//! The device-RAM frame pool.
//!
//! Physical memory on the co-processor is handed out in *blocks*: aligned
//! runs of 4 kB frames matching the experiment's page size (1, 16 or 512
//! frames). Each experiment fixes one block size, so the pool is a free
//! stack of block-aligned runs — mirroring how the paper's kernel
//! dedicates a physically contiguous region to the PSPT computation area.
//!
//! For the parallel engine the free stack is *sharded*: each shard is a
//! lock-free Treiber stack threaded through a preallocated `next` array
//! (one slot per block), so concurrent fault handlers allocate from
//! their home shard without ever taking a host lock, stealing from the
//! other shards round-robin only when their own runs dry. The stack head
//! packs a 32-bit version tag next to the slot index in one `AtomicU64`,
//! which defeats the ABA problem without unsafe code or allocation.
//!
//! Frame numbers are opaque to the simulation — no counter, report, or
//! trace payload depends on *which* block a page lands in — so the
//! allocation order changing across shard layouts does not perturb
//! virtual-time results.
//!
//! ## Memory-ordering contract
//!
//! Model-checked by the `loom_tests` module below (run with
//! `make test-loom`); the per-field table lives in DESIGN.md §10. The
//! load-bearing facts:
//!
//! * **Every successful head CAS is `AcqRel`.** The `Release` half
//!   publishes the `next[slot]` link written just before a push (and,
//!   transitively, the whole history the CASing thread has acquired);
//!   the `Acquire` half lets each successful pop/push inherit that
//!   history, so happens-before chains across arbitrarily many
//!   hand-offs of the same block *without* leaning on C++20 release
//!   sequences. The minimal provable orderings are `Release` for push
//!   and `Acquire` for pop — `AcqRel` on both is deliberate margin,
//!   and the weakened `Acquire`-publish variant demonstrably loses
//!   blocks under the model checker
//!   (`loom_buggy_acquire_publish_is_caught`).
//! * **`next[slot]` transfers with the head, not on its own.** A slot's
//!   link is written only by the block's owner while the block is off
//!   every stack; the head CAS is the publication point. Pop's read of
//!   the link may therefore be `Relaxed`: the value is consumed only if
//!   the subsequent CAS succeeds against the *same observed head
//!   version*, and that head value was read with `Acquire` (initial
//!   load or CAS failure), which makes the paired link store visible by
//!   happens-before + coherence. A newer in-flight link store (ABA
//!   re-push) implies an interleaved pop bumped the version, so the CAS
//!   fails and the stale read is discarded.
//! * **Counters (`len`, `usable`, `quarantined`, the debug double-free
//!   flags) are `Relaxed`.** They are statistics trailing the structural
//!   CASes, never consulted to justify a dereference; signed types
//!   absorb the transient over/under-shoot (see `free_blocks`).
//! * Construction uses `Relaxed` throughout: the pool is published to
//!   other threads by whatever mechanism shares the reference
//!   (`Arc::clone`, scoped-thread spawn), which supplies the edge.

// `AtomicBool` backs the debug-only double-free detector, so release
// builds must not import it (unused-import warning otherwise).
#[cfg(all(loom, debug_assertions))]
use loom::sync::atomic::AtomicBool;
#[cfg(loom)]
use loom::sync::atomic::{AtomicIsize, AtomicU32, AtomicU64, Ordering};
#[cfg(all(not(loom), debug_assertions))]
use std::sync::atomic::AtomicBool;
#[cfg(not(loom))]
use std::sync::atomic::{AtomicIsize, AtomicU32, AtomicU64, Ordering};

use cmcp_arch::{PageSize, PhysFrame};

/// Sentinel: an empty stack / end of the free list (slot indices are
/// stored +1 so 0 can mean "none").
const NIL: u32 = 0;

/// One lock-free LIFO of free blocks (head only; the links live in the
/// pool-wide `next` array).
#[derive(Debug, Default)]
struct Shard {
    /// `(version << 32) | (slot + 1)`; slot part [`NIL`] when empty.
    head: AtomicU64,
    /// Blocks currently on this shard's stack (relaxed, for stats and
    /// steal targeting; the stack itself is the source of truth). Signed:
    /// the counter updates trail the head CAS, so a pop racing a push on
    /// a near-empty shard can observe -1 for an instant.
    len: AtomicIsize,
}

#[inline]
fn pack(version: u32, slot_plus_one: u32) -> u64 {
    ((version as u64) << 32) | slot_plus_one as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Fixed-block-size frame allocator over the device RAM.
#[derive(Debug)]
pub struct FramePool {
    block_size: PageSize,
    /// Per-slot successor link: `next[slot]` is the `slot + 1` of the
    /// block below it on its shard's stack, or [`NIL`]. A slot is only
    /// written by the thread that currently owns the block (it is off
    /// every stack while owned), so plain stores with the CAS on the
    /// shard head publishing them are sufficient.
    next: Vec<AtomicU32>,
    shards: Vec<Shard>,
    total_blocks: usize,
    /// Poisoned-frame quarantine: a dedicated Treiber stack that
    /// [`FramePool::alloc_for`] never pops, so a frame whose page-in DMA
    /// failed unrecoverably can be parked without ever re-entering
    /// circulation. Excluded from [`FramePool::free_blocks`].
    quarantine: Shard,
    /// Signed count of blocks still in circulation (free or allocated):
    /// `total_blocks` minus completed quarantines. Signed for the same
    /// reason as [`Shard::len`] — a racing reader must never observe a
    /// transient underflow as a huge unsigned value.
    usable: AtomicIsize,
    /// Blocks ever quarantined (monotone).
    quarantined: AtomicU64,
    /// Double-free detector, debug builds only: one flag per slot.
    #[cfg(debug_assertions)]
    on_free_list: Vec<AtomicBool>,
}

impl FramePool {
    /// A pool of `blocks` blocks of `block_size` each, starting at
    /// physical frame 0, with a single freelist shard (the layout the
    /// deterministic engine and unit tests use).
    pub fn new(block_size: PageSize, blocks: usize) -> FramePool {
        FramePool::with_shards(block_size, blocks, 1)
    }

    /// A pool striped over `shards` lock-free freelists. Blocks are
    /// dealt round-robin (block *i* starts on shard `i % shards`) and
    /// pushed in reverse so every shard allocates in ascending order.
    pub fn with_shards(block_size: PageSize, blocks: usize, shards: usize) -> FramePool {
        let shards = shards.clamp(1, blocks.max(1));
        let pool = FramePool {
            block_size,
            next: (0..blocks).map(|_| AtomicU32::new(NIL)).collect(),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            total_blocks: blocks,
            quarantine: Shard::default(),
            usable: AtomicIsize::new(blocks as isize),
            quarantined: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            on_free_list: (0..blocks).map(|_| AtomicBool::new(true)).collect(),
        };
        for slot in (0..blocks as u32).rev() {
            let shard = &pool.shards[slot as usize % shards];
            let (version, top) = unpack(shard.head.load(Ordering::Relaxed));
            pool.next[slot as usize].store(top, Ordering::Relaxed);
            shard.head.store(pack(version, slot + 1), Ordering::Relaxed);
            shard.len.fetch_add(1, Ordering::Relaxed);
        }
        pool
    }

    /// Block size served by this pool.
    pub fn block_size(&self) -> PageSize {
        self.block_size
    }

    /// Total capacity in blocks.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of freelist shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Currently free blocks (relaxed sum over the shard counters —
    /// exact when the pool is quiescent, approximate mid-race: counter
    /// updates trail the stack CAS, so the sum is clamped at zero).
    pub fn free_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum::<isize>()
            .max(0) as usize
    }

    #[inline]
    fn slot_of(&self, frame: PhysFrame) -> u32 {
        frame.0 / self.block_size.pages_4k() as u32
    }

    /// Pops from one shard's Treiber stack.
    ///
    /// Orderings (see the module contract): every read of `head` on this
    /// path — the initial load and the CAS failure — is `Acquire`, which
    /// synchronizes with the `Release` half of the CAS that pushed `top`
    /// and so makes the paired `next[top-1]` link store visible. That is
    /// what lets the link read below be `Relaxed`.
    fn pop_shard(&self, shard: &Shard) -> Option<PhysFrame> {
        let mut observed = shard.head.load(Ordering::Acquire);
        loop {
            let (version, top) = unpack(observed);
            if top == NIL {
                return None;
            }
            let slot = top - 1;
            // Relaxed is sufficient (was Acquire): the link was published
            // by the Release CAS that installed `top`, which the Acquire
            // read of `observed` already synchronized with, so this load
            // is coherence-bound to see it. A *newer* racing link store
            // implies the block was popped and re-pushed meanwhile, which
            // bumped the version — the CAS below fails on the version
            // mismatch and the value read here is discarded. Nothing is
            // dereferenced through `below` before that check. Model:
            // `loom_push_publishes_link_to_racing_pop`.
            let below = self.next[slot as usize].load(Ordering::Relaxed);
            let replacement = pack(version.wrapping_add(1), below);
            match shard.head.compare_exchange_weak(
                observed,
                replacement,
                // Success AcqRel: Release republishes the inherited links
                // for later poppers; Acquire imports the pusher's history
                // so the block's memory may be touched after this pop
                // (minimum provable here is Acquire — see module doc).
                // Failure Acquire: the re-observed head seeds the next
                // iteration's Relaxed link read, so it must synchronize
                // with that head value's publisher, exactly like the
                // initial load.
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    shard.len.fetch_sub(1, Ordering::Relaxed);
                    #[cfg(debug_assertions)]
                    self.on_free_list[slot as usize].store(false, Ordering::Relaxed);
                    let span = self.block_size.pages_4k() as u32;
                    return Some(PhysFrame(slot * span));
                }
                Err(actual) => observed = actual,
            }
        }
    }

    /// Pushes onto one shard's Treiber stack.
    fn push_shard(&self, shard: &Shard, frame: PhysFrame) {
        let slot = self.slot_of(frame);
        #[cfg(debug_assertions)]
        {
            let was = self.on_free_list[slot as usize].swap(true, Ordering::Relaxed);
            debug_assert!(!was, "double free of {frame}");
        }
        // Relaxed is sufficient for every *read* of `head` on the push
        // path (was Acquire on both the initial load and the CAS
        // failure): the pusher consumes nothing reachable through the
        // observed top — it only copies the raw value into `next[slot]`
        // for the eventual popper, and a stale observation merely makes
        // the CAS fail and retry. Audit fix for the PR 2 orderings;
        // model: `loom_push_publishes_link_to_racing_pop`.
        let mut observed = shard.head.load(Ordering::Relaxed);
        loop {
            let (version, top) = unpack(observed);
            // Plain-store the link; the CAS below is its publication
            // point (module contract: `next` transfers with the head).
            self.next[slot as usize].store(top, Ordering::Relaxed);
            let replacement = pack(version.wrapping_add(1), slot + 1);
            match shard.head.compare_exchange_weak(
                observed,
                replacement,
                // Success AcqRel: the Release half is the load-bearing
                // ordering of the whole pool — it publishes the link
                // store above (and the block's contents) to the Acquire
                // head reads in `pop_shard`. The pre-fix `Acquire`
                // variant demonstrably loses blocks:
                // `loom_buggy_acquire_publish_is_caught`. The Acquire
                // half keeps the hand-off chain intact without relying
                // on release sequences (minimum provable is Release).
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    shard.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => observed = actual,
            }
        }
    }

    /// Takes a block, or `None` when device RAM is exhausted (the caller
    /// must evict first). Equivalent to [`FramePool::alloc_for`] with
    /// home shard 0.
    pub fn alloc(&self) -> Option<PhysFrame> {
        self.alloc_for(0)
    }

    /// Takes a block, preferring the home shard `hint % shards` and
    /// work-stealing round-robin from the remaining shards when it is
    /// dry. Returns `None` only when *every* shard is empty.
    pub fn alloc_for(&self, hint: usize) -> Option<PhysFrame> {
        let n = self.shards.len();
        let home = hint % n;
        for probe in 0..n {
            let shard = &self.shards[(home + probe) % n];
            if let Some(frame) = self.pop_shard(shard) {
                return Some(frame);
            }
        }
        None
    }

    /// Returns a block to the pool (shard 0).
    ///
    /// Panics if the frame is not block-aligned — catching double frees
    /// of mis-sized runs early.
    pub fn free(&self, frame: PhysFrame) {
        self.free_for(frame, 0);
    }

    /// Returns a block to the shard `hint % shards`, keeping frames near
    /// the core that releases them.
    ///
    /// Panics if the frame is not block-aligned — catching double frees
    /// of mis-sized runs early.
    pub fn free_for(&self, frame: PhysFrame, hint: usize) {
        let span = self.block_size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "freeing unaligned block head {frame}"
        );
        debug_assert!(
            (self.slot_of(frame) as usize) < self.total_blocks,
            "freeing {frame} beyond the pool"
        );
        // No pool-level occupancy assert here: `free_blocks()` is a racy
        // relaxed sum that can transiently over-read mid-race, so it is
        // not a sound oracle. The per-slot `on_free_list` flags catch
        // genuine double frees exactly.
        self.push_shard(&self.shards[hint % self.shards.len()], frame);
    }

    /// Permanently parks an *owned* block on the quarantine stack after
    /// an unrecoverable page-in error: it never returns from
    /// [`FramePool::alloc_for`] again. The signed `usable` counter is
    /// decremented exactly once, here, before the frame becomes visible
    /// on any stack — a steal racing this call can only miss the frame
    /// (it is on no allocatable shard), never double-count it, so
    /// `usable_blocks() == total_blocks() - quarantined_blocks()` holds
    /// at every quiescent point. The caller must own the frame (the
    /// debug double-free flags enforce this), which also rules out a
    /// concurrent `free_for` of the same block.
    pub fn quarantine(&self, frame: PhysFrame) {
        let span = self.block_size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "quarantining unaligned block head {frame}"
        );
        self.usable.fetch_sub(1, Ordering::Relaxed);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.push_shard(&self.quarantine, frame);
    }

    /// Blocks still in circulation (free or allocated): total minus
    /// quarantined. Clamped at zero like [`FramePool::free_blocks`].
    pub fn usable_blocks(&self) -> usize {
        self.usable.load(Ordering::Relaxed).max(0) as usize
    }

    /// Blocks ever quarantined.
    pub fn quarantined_blocks(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }
}

// Gated `not(loom)`: these use std threads and run real interleavings;
// under `--cfg loom` the pool's atomics only work inside `loom::model`.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    /// Iteration count for the threaded stress tests below: full strength
    /// natively, scaled down under Miri where every atomic op is
    /// interpreted (coverage there comes from the interleaving-seeking
    /// scheduler, not volume).
    const STRESS_ROUNDS: usize = if cfg!(miri) { 400 } else { 20_000 };

    #[test]
    fn alloc_returns_aligned_blocks() {
        let pool = FramePool::new(PageSize::K64, 4);
        for _ in 0..4 {
            let f = pool.alloc().unwrap();
            assert_eq!(f.0 % 16, 0, "64kB block must be 16-frame aligned");
        }
        assert!(pool.alloc().is_none());
    }

    #[test]
    fn free_recycles() {
        let pool = FramePool::new(PageSize::K4, 2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert_eq!(pool.free_blocks(), 0);
        pool.free(a);
        assert_eq!(pool.free_blocks(), 1);
        assert_eq!(pool.alloc(), Some(a));
    }

    #[test]
    fn distinct_blocks_never_overlap() {
        let pool = FramePool::new(PageSize::M2, 8);
        let mut heads: Vec<u32> = (0..8).map(|_| pool.alloc().unwrap().0).collect();
        heads.sort_unstable();
        for w in heads.windows(2) {
            assert!(w[1] - w[0] >= 512, "2MB blocks are 512 frames apart");
        }
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_free_is_rejected() {
        let pool = FramePool::new(PageSize::K64, 2);
        pool.free(PhysFrame(3));
    }

    #[test]
    fn capacity_accounting() {
        let pool = FramePool::new(PageSize::K4, 100);
        assert_eq!(pool.total_blocks(), 100);
        assert_eq!(pool.free_blocks(), 100);
        assert_eq!(pool.block_size(), PageSize::K4);
        assert_eq!(pool.shard_count(), 1);
    }

    #[test]
    fn single_shard_allocates_ascending() {
        let pool = FramePool::new(PageSize::K4, 8);
        let heads: Vec<u32> = (0..8).map(|_| pool.alloc().unwrap().0).collect();
        assert_eq!(heads, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn sharded_pool_serves_every_block_exactly_once() {
        let pool = FramePool::with_shards(PageSize::K64, 10, 4);
        assert_eq!(pool.shard_count(), 4);
        let mut heads: Vec<u32> = (0..10).map(|i| pool.alloc_for(i).unwrap().0).collect();
        assert!(pool.alloc_for(0).is_none());
        heads.sort_unstable();
        assert_eq!(heads, (0..10u32).map(|i| i * 16).collect::<Vec<u32>>());
    }

    #[test]
    fn home_shard_is_preferred() {
        let pool = FramePool::with_shards(PageSize::K4, 8, 4);
        // Shard 2 initially holds blocks 2 and 6; it pops ascending.
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(2)));
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(6)));
        // Dry home shard steals from the next shard round-robin.
        assert_eq!(pool.alloc_for(2), Some(PhysFrame(3)));
    }

    #[test]
    fn free_for_lands_on_the_hinted_shard() {
        let pool = FramePool::with_shards(PageSize::K4, 4, 2);
        let f = pool.alloc_for(0).unwrap();
        pool.free_for(f, 1);
        // Drain shard 1: the freed frame must come back from there
        // (shard 1 started with blocks 1 and 3; the freed block 0 is on
        // top of its LIFO).
        assert_eq!(pool.alloc_for(1), Some(f));
    }

    #[test]
    fn shards_clamp_to_block_count() {
        let pool = FramePool::with_shards(PageSize::K4, 2, 64);
        assert_eq!(pool.shard_count(), 2);
        assert!(pool.alloc_for(17).is_some());
    }

    #[test]
    fn near_empty_shard_races_never_over_read_occupancy() {
        // Regression: a pop racing a push on an empty shard used to drive
        // the unsigned shard counter to usize::MAX for an instant, so a
        // concurrent occupancy read claimed the pool held ~2^64 free
        // blocks (and a debug assert built on that read panicked a
        // parallel-engine worker). Hammer tiny shards and check the sum
        // never exceeds capacity.
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 4, 2));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..STRESS_ROUNDS {
                        if let Some(f) = pool.alloc_for(w) {
                            assert!(pool.free_blocks() <= pool.total_blocks());
                            pool.free_for(f, w + 1);
                        }
                        assert!(pool.free_blocks() <= pool.total_blocks());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_blocks(), 4);
    }

    #[test]
    fn quarantine_under_steal_races_decrements_usable_exactly_once() {
        // Extension of the PR 2 underflow regression for the fault
        // layer: while workers hammer alloc/free across shards (every
        // alloc_for here steals once its home shard dries), others
        // quarantine what they win. The signed usable counter must drop
        // by exactly one per quarantine — never zero (leak), never two
        // (double decrement via a racing steal) — and must never be
        // observed above capacity mid-race.
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 64, 4));
        let quarantines = Arc::new(AtomicU64::new(0));
        let rounds = STRESS_ROUNDS / 2;
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let pool = Arc::clone(&pool);
                let quarantines = Arc::clone(&quarantines);
                std::thread::spawn(move || {
                    for round in 0..rounds {
                        let Some(f) = pool.alloc_for(w) else { continue };
                        assert!(pool.usable_blocks() <= pool.total_blocks());
                        assert!(pool.free_blocks() <= pool.total_blocks());
                        // Each worker quarantines 4 of its wins, spread
                        // over the run so steals are in flight.
                        if round % (rounds / 4) == 1 {
                            pool.quarantine(f);
                            quarantines.fetch_add(1, Ordering::Relaxed);
                        } else {
                            pool.free_for(f, w + round);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let q = quarantines.load(Ordering::Relaxed);
        assert_eq!(q, 16, "4 workers × 4 quarantines");
        assert_eq!(pool.quarantined_blocks(), q);
        assert_eq!(pool.usable_blocks(), 64 - q as usize);
        assert_eq!(pool.free_blocks(), 64 - q as usize);
        // Quarantined blocks are really out of circulation: draining the
        // pool yields exactly the usable count, all distinct.
        let mut heads: Vec<u32> = std::iter::from_fn(|| pool.alloc_for(0).map(|f| f.0)).collect();
        heads.sort_unstable();
        heads.dedup();
        assert_eq!(heads.len(), 64 - q as usize);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn freeing_a_quarantined_block_is_caught() {
        let pool = FramePool::new(PageSize::K4, 2);
        let f = pool.alloc().unwrap();
        pool.quarantine(f);
        pool.free(f);
    }

    #[test]
    fn concurrent_alloc_free_conserves_blocks() {
        use std::sync::Arc;
        let pool = Arc::new(FramePool::with_shards(PageSize::K4, 64, 8));
        let workers = 8;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for round in 0..STRESS_ROUNDS / 10 {
                        if let Some(f) = pool.alloc_for(w) {
                            held.push(f);
                        }
                        if round % 3 == 0 || held.len() > 4 {
                            if let Some(f) = held.pop() {
                                pool.free_for(f, w + round);
                            }
                        }
                    }
                    for f in held {
                        pool.free_for(f, w);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_blocks(), 64, "every block returned exactly once");
        // And they are all still distinct, alloc-able blocks.
        let mut heads: Vec<u32> = (0..64).map(|i| pool.alloc_for(i).unwrap().0).collect();
        heads.sort_unstable();
        heads.dedup();
        assert_eq!(heads.len(), 64);
    }
}

/// Bounded model checks of the pool's memory-ordering contract. Run with
/// `make test-loom` (`RUSTFLAGS="--cfg loom"`); every test explores all
/// thread interleavings up to the preemption bound *and* all
/// release/acquire-permitted values for every load, so a passing test is
/// a proof over that bounded space, not a lucky schedule.
#[cfg(all(loom, test))]
mod loom_tests {
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    /// Drains the pool through shard 0 and asserts it holds exactly
    /// `expect` distinct blocks; returns their head frame numbers.
    fn drain_distinct(pool: &FramePool, expect: usize) -> Vec<u32> {
        let mut heads: Vec<u32> = std::iter::from_fn(|| pool.alloc_for(0).map(|f| f.0)).collect();
        heads.sort_unstable();
        heads.dedup();
        assert_eq!(
            heads.len(),
            expect,
            "pool must hold {expect} distinct blocks"
        );
        heads
    }

    /// The push-publish hand-off: a pop racing a free must either miss
    /// the block or observe its link exactly as written before the
    /// publishing CAS — never a stale link (lost block) or the same
    /// block twice. Exercises the Relaxed link read in `pop_shard`
    /// against the Release half of the push CAS.
    #[test]
    fn loom_push_publishes_link_to_racing_pop() {
        loom::model(|| {
            let pool = Arc::new(FramePool::new(PageSize::K4, 2));
            let a = pool.alloc().unwrap(); // stack now holds one block
            let p2 = Arc::clone(&pool);
            let t = thread::spawn(move || p2.free(a));
            let x = pool.alloc(); // races the push: either block, or both
            let y = pool.alloc(); // in LIFO order, or a miss
            t.join().unwrap();
            if let (Some(x), Some(y)) = (x, y) {
                assert_ne!(x, y, "one block served twice");
            }
            for f in [x, y].into_iter().flatten() {
                pool.free(f);
            }
            drain_distinct(&pool, 2);
        });
    }

    /// Cross-shard circulation: each thread allocates from its home
    /// shard and frees to the other, so pushes, pops, and steals race on
    /// both heads. No block may be lost or duplicated in any
    /// interleaving.
    #[test]
    fn loom_steal_across_shards_conserves_blocks() {
        loom::model(|| {
            let pool = Arc::new(FramePool::with_shards(PageSize::K4, 2, 2));
            let p2 = Arc::clone(&pool);
            let t = thread::spawn(move || {
                if let Some(f) = p2.alloc_for(0) {
                    p2.free_for(f, 1);
                }
            });
            if let Some(f) = pool.alloc_for(1) {
                pool.free_for(f, 0);
            }
            t.join().unwrap();
            drain_distinct(&pool, 2);
        });
    }

    /// Quarantine vs. a racing cross-shard steal: the signed `usable`
    /// counter drops exactly once, and the poisoned block is out of
    /// circulation in every interleaving (a racing alloc can only miss
    /// it, never win it back).
    #[test]
    fn loom_quarantine_excludes_block_under_racing_steal() {
        loom::model(|| {
            let pool = Arc::new(FramePool::with_shards(PageSize::K4, 2, 2));
            let poisoned = pool.alloc_for(0).unwrap();
            let p2 = Arc::clone(&pool);
            let t = thread::spawn(move || {
                // Drives a steal (home shard 0 is empty) during the
                // quarantine push.
                if let Some(f) = p2.alloc_for(0) {
                    p2.free_for(f, 0);
                }
            });
            pool.quarantine(poisoned);
            t.join().unwrap();
            assert_eq!(pool.quarantined_blocks(), 1);
            assert_eq!(pool.usable_blocks(), 1);
            let heads = drain_distinct(&pool, 1);
            assert_ne!(
                heads[0], poisoned.0,
                "quarantined block re-entered circulation"
            );
        });
    }

    /// The pre-fix bug class, pinned: a push whose CAS success ordering
    /// is `Acquire` (no Release half) does not publish the link store,
    /// so a popper can read a stale link and corrupt the stack. The
    /// checker MUST find that execution — this is the acceptance test
    /// that the harness would have caught the original ordering bug.
    #[test]
    fn loom_buggy_acquire_publish_is_caught() {
        let caught = std::panic::catch_unwind(|| {
            loom::model(|| {
                let head = Arc::new(AtomicU64::new(0));
                let link = Arc::new(AtomicU32::new(0));
                let (h2, l2) = (Arc::clone(&head), Arc::clone(&link));
                let t = thread::spawn(move || {
                    l2.store(7, Ordering::Relaxed);
                    // BUG under test: success ordering lacks Release, so
                    // the link store above is unpublished.
                    let _ = h2.compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed);
                });
                if head.load(Ordering::Acquire) == 1 {
                    assert_eq!(link.load(Ordering::Relaxed), 7, "stale link visible");
                }
                t.join().unwrap();
            });
        });
        assert!(
            caught.is_err(),
            "the Acquire-publish ordering bug must be detected by the model checker"
        );
    }
}
