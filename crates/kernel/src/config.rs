//! Experiment configuration for the kernel memory manager.

use cmcp_arch::{CostModel, FaultPlan, PageSize, TierConfig};
use cmcp_core::PolicyKind;

/// Which page-table scheme the address space uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeChoice {
    /// Traditional shared page tables (broadcast shootdowns, one lock).
    Regular,
    /// Per-core partially separated page tables.
    Pspt,
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeChoice::Regular => write!(f, "regular PT"),
            SchemeChoice::Pspt => write!(f, "PSPT"),
        }
    }
}

/// Full kernel configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Application cores sharing the address space.
    pub cores: usize,
    /// Mapping granularity for the computation area (fixed per run, as
    /// in the paper's experiments).
    pub block_size: PageSize,
    /// Device RAM capacity, in blocks: the memory-constraint knob. The
    /// paper expresses this as a percentage of the application footprint.
    pub device_blocks: usize,
    /// Page-table scheme.
    pub scheme: SchemeChoice,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Cycle cost table.
    pub cost: CostModel,
    /// Blocks examined per accessed-bit scan tick; 0 selects an automatic
    /// budget of `max(resident / 8, 32)`.
    pub scan_budget: usize,
    /// Virtual-time period for periodic PSPT rebuilding (paper §5.6
    /// future work: refresh the core-map counts of workloads whose
    /// sharing pattern drifts). 0 disables rebuilding.
    pub pspt_rebuild_period: u64,
    /// Declarative fault schedule for the PCIe/backing path. `None`
    /// (the default) injects nothing and leaves the fault path
    /// bit-identical to a build without the fault layer.
    pub fault_plan: Option<FaultPlan>,
    /// Online page-size adaptation: `block_size` becomes the *largest*
    /// granularity (2 MB), faults map at the pressure-chosen size, and
    /// oversized victims split one level instead of evicting whole.
    /// `false` (the default) keeps the paper's fixed-size behavior
    /// bit-identical.
    pub adaptive: bool,
}

impl KernelConfig {
    /// A reasonable starting point: PSPT + FIFO on 4 kB pages.
    pub fn new(cores: usize, device_blocks: usize) -> KernelConfig {
        KernelConfig {
            cores,
            block_size: PageSize::K4,
            device_blocks,
            scheme: SchemeChoice::Pspt,
            policy: PolicyKind::Fifo,
            cost: CostModel::default(),
            scan_budget: 0,
            pspt_rebuild_period: 0,
            fault_plan: None,
            adaptive: false,
        }
    }

    /// Builder-style scheme selection.
    pub fn with_scheme(mut self, scheme: SchemeChoice) -> KernelConfig {
        self.scheme = scheme;
        self
    }

    /// Builder-style policy selection.
    pub fn with_policy(mut self, policy: PolicyKind) -> KernelConfig {
        self.policy = policy;
        self
    }

    /// Builder-style page-size selection.
    pub fn with_block_size(mut self, size: PageSize) -> KernelConfig {
        self.block_size = size;
        self
    }

    /// Builder-style fault-plan selection.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> KernelConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder-style backing-tier hierarchy selection (stored in the
    /// cost model, where the per-tier penalties live).
    pub fn with_tiers(mut self, tiers: TierConfig) -> KernelConfig {
        self.cost.tiers = tiers;
        self
    }

    /// Builder-style adaptive page-size mode: forces the 2 MB maximum
    /// granularity and enables online split/promote decisions.
    pub fn with_adaptive(mut self) -> KernelConfig {
        self.adaptive = true;
        self.block_size = PageSize::M2;
        self
    }

    /// The configured backing hierarchy.
    pub fn tiers(&self) -> &TierConfig {
        &self.cost.tiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = KernelConfig::new(8, 100)
            .with_scheme(SchemeChoice::Regular)
            .with_policy(PolicyKind::Lru)
            .with_block_size(PageSize::K64);
        assert_eq!(c.cores, 8);
        assert_eq!(c.device_blocks, 100);
        assert_eq!(c.scheme, SchemeChoice::Regular);
        assert_eq!(c.policy, PolicyKind::Lru);
        assert_eq!(c.block_size, PageSize::K64);
    }
}
