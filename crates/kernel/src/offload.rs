//! System-call offloading to the host.
//!
//! The paper's lightweight kernel keeps only the hot paths on the
//! co-processor; "heavy system calls are shipped to and executed on the
//! host" (§2.1) over the IKC channel. File I/O — SCALE writes history
//! and restart files — is the prime example.
//!
//! The offload engine wraps an [`IkcChannel`] and keeps per-core counts;
//! the engine charges the round trip (queueing included) to the calling
//! core's clock, so offload-heavy phases serialize visibly, which is
//! precisely why the kernel design keeps them off the paging fast path.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use cmcp_arch::{CoreClock, CoreId, Cycles, FaultInjector, IkcChannel, IkcMessage};

use cmcp_arch::CostModel;

/// Host-side service-time catalogue (cycles of host work at device
/// clock), loosely calibrated to Linux syscall latencies plus the
/// host-kernel proxy thread dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syscall {
    /// `open`/`close`-class metadata operation.
    Metadata,
    /// `read` of `bytes` from a host file.
    Read(u64),
    /// `write` of `bytes` to a host file.
    Write(u64),
}

impl Syscall {
    /// IKC message for this call.
    pub fn message(self) -> IkcMessage {
        match self {
            Syscall::Metadata => IkcMessage::Syscall {
                service: 8_000,
                payload: 256,
            },
            Syscall::Read(bytes) => IkcMessage::Syscall {
                service: 12_000,
                payload: bytes,
            },
            Syscall::Write(bytes) => IkcMessage::Syscall {
                service: 15_000,
                payload: bytes,
            },
        }
    }
}

/// The per-address-space offload engine.
#[derive(Debug)]
pub struct OffloadEngine {
    channel: IkcChannel,
    calls: Vec<AtomicU64>,
    wait_cycles: Vec<AtomicU64>,
}

impl OffloadEngine {
    /// An engine for `cores` cores over a channel with `cost`'s link
    /// characteristics.
    pub fn new(cost: &CostModel, cores: usize) -> OffloadEngine {
        OffloadEngine {
            channel: IkcChannel::new(cost),
            calls: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            wait_cycles: (0..cores).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Executes `call` on behalf of `core`, blocking its clock for the
    /// full round trip.
    pub fn syscall(&self, core: CoreId, clock: &CoreClock, call: Syscall) -> Cycles {
        let now = clock.now();
        let done = self.channel.round_trip(now, call.message());
        let wait = done.done_at.saturating_sub(now);
        clock.advance(wait);
        self.calls[core.index()].fetch_add(1, Relaxed);
        self.wait_cycles[core.index()].fetch_add(wait, Relaxed);
        wait
    }

    /// [`OffloadEngine::syscall`] with IKC fault injection: each dropped
    /// message costs the caller a resend timeout (folded into the
    /// returned wait). Returns the wait and the number of drops.
    pub fn syscall_with_faults(
        &self,
        core: CoreId,
        clock: &CoreClock,
        call: Syscall,
        inj: Option<&FaultInjector>,
    ) -> (Cycles, u32) {
        let now = clock.now();
        let (done, drops) = self.channel.round_trip_checked(now, call.message(), inj);
        let wait = done.done_at.saturating_sub(now);
        clock.advance(wait);
        self.calls[core.index()].fetch_add(1, Relaxed);
        self.wait_cycles[core.index()].fetch_add(wait, Relaxed);
        (wait, drops)
    }

    /// Synchronous fallback after offload-engine death: the call is
    /// emulated locally without touching the (dead) channel, costing
    /// the message's service time both ways plus the doorbell hops it
    /// would have pipelined — strictly slower than a healthy offload,
    /// which is the degradation the run reports surface.
    pub fn sync_syscall(&self, core: CoreId, clock: &CoreClock, call: Syscall) -> Cycles {
        let msg = call.message();
        let wait = 2 * self.channel.service_time(msg) + 4 * self.channel.latency();
        clock.advance(wait);
        self.calls[core.index()].fetch_add(1, Relaxed);
        self.wait_cycles[core.index()].fetch_add(wait, Relaxed);
        wait
    }

    /// Offloaded calls issued by `core`.
    pub fn calls(&self, core: CoreId) -> u64 {
        self.calls[core.index()].load(Relaxed)
    }

    /// Cycles `core` spent blocked on offloads.
    pub fn wait_cycles(&self, core: CoreId) -> u64 {
        self.wait_cycles[core.index()].load(Relaxed)
    }

    /// Total round trips across cores.
    pub fn total_calls(&self) -> u64 {
        self.channel.requests()
    }

    /// Total payload bytes shipped over IKC.
    pub fn total_payload(&self) -> u64 {
        self.channel.payload_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cores: usize) -> OffloadEngine {
        OffloadEngine::new(&CostModel::default(), cores)
    }

    #[test]
    fn syscall_blocks_the_caller() {
        let e = engine(2);
        let clock = CoreClock::new();
        let wait = e.syscall(CoreId(0), &clock, Syscall::Metadata);
        assert!(wait > 8_000, "at least the host service time: {wait}");
        assert_eq!(clock.now(), wait);
        assert_eq!(e.calls(CoreId(0)), 1);
        assert_eq!(e.calls(CoreId(1)), 0);
    }

    #[test]
    fn writes_cost_more_with_more_bytes() {
        let e = engine(1);
        let clock = CoreClock::new();
        let small = e.syscall(CoreId(0), &clock, Syscall::Write(4 << 10));
        // Leave a gap so the channel is idle again.
        clock.advance(10_000_000);
        let big = e.syscall(CoreId(0), &clock, Syscall::Write(4 << 20));
        assert!(
            big > 5 * small,
            "4MB write must dwarf 4kB: {small} vs {big}"
        );
        assert_eq!(e.total_payload(), (4 << 10) + (4 << 20));
    }

    #[test]
    fn faulted_syscall_without_plan_matches_plain() {
        let e = engine(1);
        let clock = CoreClock::new();
        let plain = e.syscall(CoreId(0), &clock, Syscall::Metadata);
        let e2 = engine(1);
        let clock2 = CoreClock::new();
        let (wait, drops) = e2.syscall_with_faults(CoreId(0), &clock2, Syscall::Metadata, None);
        assert_eq!(drops, 0);
        assert_eq!(wait, plain);
    }

    #[test]
    fn sync_fallback_is_slower_than_healthy_offload() {
        let e = engine(1);
        let clock = CoreClock::new();
        let offloaded = e.syscall(CoreId(0), &clock, Syscall::Write(64 << 10));
        clock.advance(10_000_000);
        let sync = e.sync_syscall(CoreId(0), &clock, Syscall::Write(64 << 10));
        assert!(
            sync > offloaded,
            "degraded mode must cost more: {offloaded} vs {sync}"
        );
        assert_eq!(e.calls(CoreId(0)), 2, "sync calls still count");
    }

    #[test]
    fn concurrent_callers_serialize_on_the_channel() {
        let e = engine(4);
        let clocks: Vec<CoreClock> = (0..4).map(|_| CoreClock::new()).collect();
        let waits: Vec<u64> = (0..4)
            .map(|c| e.syscall(CoreId(c as u16), &clocks[c], Syscall::Read(1 << 20)))
            .collect();
        assert!(
            waits[3] > waits[0] * 2,
            "the fourth caller queues behind three 1MB reads: {waits:?}"
        );
        assert_eq!(e.total_calls(), 4);
    }
}
