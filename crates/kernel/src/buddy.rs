//! A buddy allocator over the device RAM for the adaptive page-size
//! mode.
//!
//! The fixed-size [`crate::frames::FramePool`] hands out blocks of one
//! experiment-wide size. Adaptive runs mix 4 kB, 64 kB and 2 MB blocks
//! in the same device RAM, so they allocate from this three-level buddy
//! instead: free lists per size class, split-on-demand from the class
//! above, eager coalescing when every sibling of a naturally aligned
//! parent is free again.
//!
//! Everything sits behind one mutex and the free lists are `BTreeSet`s
//! (lowest address first), so allocation order is a pure function of
//! the call sequence — and every call happens in the engine's
//! sequential commit phase, which is what keeps adaptive runs
//! byte-identical at any host thread count. The lock-free heroics of
//! the fixed pool are pointless here: the adaptive fault path is
//! serialized by construction.

use std::collections::BTreeSet;

use parking_lot::Mutex;

use cmcp_arch::{PageSize, PhysFrame};

/// Size classes, smallest first (mirrors [`PageSize::ALL`]).
const LEVELS: [PageSize; 3] = [PageSize::K4, PageSize::K64, PageSize::M2];

fn level_of(size: PageSize) -> usize {
    match size {
        PageSize::K4 => 0,
        PageSize::K64 => 1,
        PageSize::M2 => 2,
    }
}

#[derive(Debug)]
struct BuddyInner {
    /// Free block heads (4 kB frame numbers) per size class.
    free: [BTreeSet<u32>; 3],
    free_pages: u64,
    quarantined_pages: u64,
}

/// Mixed-size device-RAM allocator. See the module docs.
#[derive(Debug)]
pub struct BuddyPool {
    inner: Mutex<BuddyInner>,
    total_pages: u64,
}

impl BuddyPool {
    /// A pool of `m2_blocks` 2 MB blocks starting at physical frame 0,
    /// initially all free at the largest class.
    pub fn new(m2_blocks: usize) -> BuddyPool {
        assert!(m2_blocks > 0, "need at least one 2MB block");
        let span = PageSize::M2.pages_4k() as u32;
        BuddyPool {
            inner: Mutex::new(BuddyInner {
                free: [
                    BTreeSet::new(),
                    BTreeSet::new(),
                    (0..m2_blocks as u32).map(|i| i * span).collect(),
                ],
                free_pages: m2_blocks as u64 * span as u64,
                quarantined_pages: 0,
            }),
            total_pages: m2_blocks as u64 * span as u64,
        }
    }

    /// Takes the lowest-addressed free block of `size`, splitting a
    /// larger block when the class is dry. `None` when no block of this
    /// size can be formed (the caller evicts, or retries smaller — a
    /// 4 kB request only fails when the pool is truly empty).
    pub fn alloc(&self, size: PageSize) -> Option<PhysFrame> {
        let want = level_of(size);
        let mut inner = self.inner.lock();
        // Find the smallest class at or above `want` with a free block.
        let from = (want..LEVELS.len()).find(|&l| !inner.free[l].is_empty())?;
        let head = *inner.free[from].iter().next().expect("nonempty class");
        inner.free[from].remove(&head);
        // Split downward: keep the lowest child at each level, free the
        // rest, so the returned head is the original block's head.
        for l in (want..from).rev() {
            let child = LEVELS[l].pages_4k() as u32;
            let children = LEVELS[l + 1].pages_4k() as u32 / child;
            for k in 1..children {
                inner.free[l].insert(head + k * child);
            }
        }
        inner.free_pages -= size.pages_4k() as u64;
        Some(PhysFrame(head))
    }

    /// Returns a block of `size`, coalescing with free siblings into the
    /// parent class while every sibling of a naturally aligned parent is
    /// free.
    ///
    /// Panics on an unaligned head (a mis-sized free would corrupt the
    /// buddy structure silently otherwise).
    pub fn free(&self, frame: PhysFrame, size: PageSize) {
        let span = size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "freeing unaligned {size} block head {frame}"
        );
        let mut inner = self.inner.lock();
        // Double-free check: the block must not already be covered by a
        // free block of its own or any larger class (a plain re-insert
        // test would miss frees that coalesced upward).
        for (sz, free) in LEVELS.iter().zip(&inner.free).skip(level_of(size)) {
            let cover = frame.0 - frame.0 % sz.pages_4k() as u32;
            assert!(
                !free.contains(&cover),
                "double free of {frame} (covered by a free {sz} block)"
            );
        }
        inner.free_pages += size.pages_4k() as u64;
        let mut level = level_of(size);
        let mut head = frame.0;
        while level + 1 < LEVELS.len() {
            let child = LEVELS[level].pages_4k() as u32;
            let parent = LEVELS[level + 1].pages_4k() as u32;
            let parent_head = head - head % parent;
            let all_free = (0..parent / child).all(|k| {
                let sib = parent_head + k * child;
                sib == head || inner.free[level].contains(&sib)
            });
            if !all_free {
                break;
            }
            for k in 0..parent / child {
                inner.free[level].remove(&(parent_head + k * child));
            }
            head = parent_head;
            level += 1;
        }
        let fresh = inner.free[level].insert(head);
        assert!(fresh, "double free of {frame}");
    }

    /// Permanently parks an owned block after an unrecoverable page-in
    /// error: its pages never return from [`BuddyPool::alloc`].
    pub fn quarantine(&self, frame: PhysFrame, size: PageSize) {
        let span = size.pages_4k() as u32;
        assert!(
            frame.0.is_multiple_of(span),
            "quarantining unaligned {size} block head {frame}"
        );
        self.inner.lock().quarantined_pages += size.pages_4k() as u64;
    }

    /// Currently free 4 kB pages.
    pub fn free_pages(&self) -> u64 {
        self.inner.lock().free_pages
    }

    /// Pages ever quarantined.
    pub fn quarantined_pages(&self) -> u64 {
        self.inner.lock().quarantined_pages
    }

    /// Total capacity in 4 kB pages.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages still in circulation: total minus quarantined.
    pub fn usable_pages(&self) -> u64 {
        self.total_pages - self.quarantined_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_pool_starts_as_m2_blocks() {
        let b = BuddyPool::new(2);
        assert_eq!(b.total_pages(), 1024);
        assert_eq!(b.free_pages(), 1024);
        assert_eq!(b.alloc(PageSize::M2), Some(PhysFrame(0)));
        assert_eq!(b.alloc(PageSize::M2), Some(PhysFrame(512)));
        assert_eq!(b.alloc(PageSize::M2), None);
        assert_eq!(b.free_pages(), 0);
    }

    #[test]
    fn split_serves_small_from_large_lowest_first() {
        let b = BuddyPool::new(1);
        // First 4k block splits M2 → 32×64k, then 64k → 16×4k.
        assert_eq!(b.alloc(PageSize::K4), Some(PhysFrame(0)));
        assert_eq!(b.alloc(PageSize::K4), Some(PhysFrame(1)));
        // A 64k block now comes from the split M2's second child.
        assert_eq!(b.alloc(PageSize::K64), Some(PhysFrame(16)));
        assert_eq!(b.free_pages(), 512 - 2 - 16);
        // No whole M2 block remains.
        assert_eq!(b.alloc(PageSize::M2), None);
    }

    #[test]
    fn coalesce_reforms_the_parent() {
        let b = BuddyPool::new(1);
        let frames: Vec<PhysFrame> = (0..16).map(|_| b.alloc(PageSize::K4).unwrap()).collect();
        assert_eq!(
            b.alloc(PageSize::K64),
            Some(PhysFrame(16)),
            "first 64k split"
        );
        b.free(PhysFrame(16), PageSize::K64);
        // Free 15 of the 16 4k children: no 64k block at head 0 yet.
        for f in &frames[1..] {
            b.free(*f, PageSize::K4);
        }
        // The last child free coalesces all the way back to one M2.
        b.free(frames[0], PageSize::K4);
        assert_eq!(b.free_pages(), 512);
        assert_eq!(b.alloc(PageSize::M2), Some(PhysFrame(0)));
    }

    #[test]
    fn quarantine_takes_pages_out_of_circulation() {
        let b = BuddyPool::new(1);
        let f = b.alloc(PageSize::K64).unwrap();
        b.quarantine(f, PageSize::K64);
        assert_eq!(b.quarantined_pages(), 16);
        assert_eq!(b.usable_pages(), 512 - 16);
        assert_eq!(b.free_pages(), 512 - 16);
        // The quarantined head never comes back.
        let mut served = Vec::new();
        while let Some(g) = b.alloc(PageSize::K64) {
            assert_ne!(g, f, "quarantined block re-entered circulation");
            served.push(g);
        }
        assert_eq!(served.len(), 31);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_free_is_rejected() {
        let b = BuddyPool::new(1);
        b.free(PhysFrame(3), PageSize::K64);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_rejected() {
        let b = BuddyPool::new(1);
        let f = b.alloc(PageSize::K4).unwrap();
        b.free(f, PageSize::K4);
        b.free(f, PageSize::K4);
    }

    #[test]
    fn mixed_churn_conserves_pages() {
        let b = BuddyPool::new(4);
        let mut held: Vec<(PhysFrame, PageSize)> = Vec::new();
        // Deterministic churn across all three classes.
        for i in 0..200u32 {
            let size = LEVELS[(i % 3) as usize];
            if i % 5 == 4 {
                if let Some((f, s)) = held.pop() {
                    b.free(f, s);
                }
            } else if let Some(f) = b.alloc(size) {
                held.push((f, size));
            }
        }
        let in_use: u64 = held.iter().map(|(_, s)| s.pages_4k() as u64).sum();
        assert_eq!(b.free_pages() + in_use, b.total_pages());
        for (f, s) in held.drain(..) {
            b.free(f, s);
        }
        assert_eq!(b.free_pages(), b.total_pages());
        // Full coalescing: all four M2 blocks are whole again.
        for k in 0..4u32 {
            assert_eq!(b.alloc(PageSize::M2), Some(PhysFrame(k * 512)));
        }
    }
}
