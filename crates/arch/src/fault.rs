//! Seeded, declarative fault injection for the PCIe/backing path.
//!
//! A [`FaultPlan`] names the failure modes a run should suffer — DMA
//! transfer errors, DMA latency spikes, IKC message drops, backing-store
//! ENOSPC, offload-engine death — each with a rate in parts-per-million.
//! The kernel compiles the plan into a [`FaultInjector`], which decides
//! *deterministically* whether each individual operation fails: the
//! decision hashes the plan seed, a per-site salt, and a per-site
//! monotone sequence number, so the same plan over the same workload
//! produces bit-identical failure schedules regardless of host thread
//! interleaving within a site.
//!
//! Rates are capped at 50 % so recovery retry loops terminate with
//! overwhelming probability (the kernel still enforces a hard attempt
//! cap as a backstop). The cap is enforced in two registers:
//! [`FaultPlan::parse`] — the CLI path — *rejects* a rate above 0.5
//! with an error, because a user who typed `dma=0.9` would otherwise
//! silently run a different experiment than they asked for; the
//! programmatic builders ([`FaultPlan::dma_errors`] & co.) keep the
//! silent clamp, because sweep harnesses legitimately drive them with
//! computed values and expect saturation semantics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use serde::{Deserialize, Serialize};

use crate::tier::MAX_TIERS;

/// Hard ceiling on any fault rate: 50 % (500 000 ppm). Above this,
/// bounded-retry recovery would stop converging quickly.
pub const MAX_RATE_PPM: u32 = 500_000;

/// One million — the denominator of all rates.
const PPM: u64 = 1_000_000;

/// Where in the PCIe/backing path a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// Host→device DMA (page-in) transfer error.
    DmaIn = 0,
    /// Device→host DMA (write-back) transfer error.
    DmaOut = 1,
    /// DMA latency spike: the transfer succeeds but takes `param` times
    /// its streaming time extra.
    DmaLatency = 2,
    /// IKC message drop: an offloaded syscall request or reply is lost
    /// and must be resent after a timeout.
    Ikc = 3,
    /// Backing-store write failure (ENOSPC / transient I/O error).
    Backing = 4,
    /// Offload-engine death: after `param` offloaded calls the host
    /// daemon stops answering and the kernel degrades to synchronous
    /// emulation forever.
    Offload = 5,
}

/// Number of distinct [`FaultSite`]s.
pub const FAULT_SITES: usize = 6;

impl FaultSite {
    /// All sites, index-ordered.
    pub const ALL: [FaultSite; FAULT_SITES] = [
        FaultSite::DmaIn,
        FaultSite::DmaOut,
        FaultSite::DmaLatency,
        FaultSite::Ikc,
        FaultSite::Backing,
        FaultSite::Offload,
    ];

    /// Stable numeric code, used as the trace-event payload.
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Stable lower-case name for reports and errors.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DmaIn => "dma_in",
            FaultSite::DmaOut => "dma_out",
            FaultSite::DmaLatency => "dma_latency",
            FaultSite::Ikc => "ikc",
            FaultSite::Backing => "backing",
            FaultSite::Offload => "offload",
        }
    }
}

// The offline serde shim derives structs only; the site enum
// serializes as its stable name.
impl Serialize for FaultSite {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for FaultSite {
    fn from_value(v: &serde::Value) -> Result<FaultSite, serde::Error> {
        let name = String::from_value(v)?;
        FaultSite::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| serde::Error::custom(format!("unknown fault site '{name}'")))
    }
}

/// One declarative rule: inject faults at `site` with probability
/// `rate_ppm` / 1 000 000 per operation. `param` is site-specific
/// (latency-spike multiplier; offload call count before death).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Where to inject.
    pub site: FaultSite,
    /// Injection probability in parts-per-million, clamped to
    /// [`MAX_RATE_PPM`] when the rule enters a plan.
    pub rate_ppm: u32,
    /// Site-specific parameter (0 where unused).
    pub param: u64,
}

/// A declarative, seeded fault schedule: the unit the CLI's
/// `--fault-plan` flag parses and the kernel consumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the injection hash; two runs with equal seed and rules
    /// see identical failure schedules.
    pub seed: u64,
    /// Active rules. At most one rule per site is meaningful; a later
    /// rule for the same site overwrites the earlier one.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    fn rule(mut self, site: FaultSite, rate_ppm: u32, param: u64) -> FaultPlan {
        self.rules.push(FaultRule {
            site,
            rate_ppm: rate_ppm.min(MAX_RATE_PPM),
            param,
        });
        self
    }

    /// DMA transfer errors (both directions) at `rate` ∈ [0, 1].
    pub fn dma_errors(self, rate: f64) -> FaultPlan {
        let ppm = rate_to_ppm(rate);
        self.rule(FaultSite::DmaIn, ppm, 0)
            .rule(FaultSite::DmaOut, ppm, 0)
    }

    /// DMA latency spikes at `rate`, each stretching the transfer by
    /// `mult` × its streaming time.
    pub fn latency_spikes(self, rate: f64, mult: u64) -> FaultPlan {
        self.rule(FaultSite::DmaLatency, rate_to_ppm(rate), mult.max(1))
    }

    /// IKC message drops at `rate`.
    pub fn ikc_drops(self, rate: f64) -> FaultPlan {
        self.rule(FaultSite::Ikc, rate_to_ppm(rate), 0)
    }

    /// Backing-store write failures (ENOSPC) at `rate`.
    pub fn enospc(self, rate: f64) -> FaultPlan {
        self.rule(FaultSite::Backing, rate_to_ppm(rate), 0)
    }

    /// Kill the offload engine after `calls` offloaded syscalls.
    pub fn offload_death_after(self, calls: u64) -> FaultPlan {
        self.rule(FaultSite::Offload, MAX_RATE_PPM, calls)
    }

    /// Parses the CLI spec format: comma-separated `key=value` pairs.
    ///
    /// ```text
    /// seed=42,dma=0.01,enospc=0.005,spike=0.001x8,ikc=0.002,offload-death=1000
    /// ```
    ///
    /// `dma`, `enospc`, `ikc` and `spike` take a probability in
    /// [0, 0.5] — rates above [`MAX_RATE_PPM`] (50 %) are **rejected**
    /// here rather than silently clamped, so a CLI run never executes a
    /// quietly weaker plan than its spec claims; `spike` takes `rate`
    /// or `ratexmult`; `offload-death` takes a call count.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry '{part}' is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("fault-plan '{key}': bad rate '{v}'"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault-plan '{key}': rate {r} outside [0, 1]"));
                }
                // Loud, not lossy: the builders below would clamp this
                // to MAX_RATE_PPM silently, which for a hand-written
                // spec means running a different experiment than the
                // flag claims. Reject instead.
                if r > MAX_RATE_PPM as f64 / PPM as f64 {
                    return Err(format!(
                        "fault-plan '{key}': rate {r} exceeds the 0.5 cap \
                         (rates above 50% defeat bounded-retry recovery); \
                         use a rate in [0, 0.5]"
                    ));
                }
                Ok(r)
            };
            plan = match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault-plan seed: bad integer '{value}'"))?;
                    plan
                }
                "dma" => plan.dma_errors(rate(value)?),
                "enospc" => plan.enospc(rate(value)?),
                "ikc" => plan.ikc_drops(rate(value)?),
                "spike" => {
                    let (r, m) = match value.split_once('x') {
                        Some((r, m)) => (
                            rate(r)?,
                            m.parse::<u64>()
                                .map_err(|_| format!("fault-plan spike: bad multiplier '{m}'"))?,
                        ),
                        None => (rate(value)?, 8),
                    };
                    plan.latency_spikes(r, m)
                }
                "offload-death" => {
                    let calls: u64 = value
                        .parse()
                        .map_err(|_| format!("fault-plan offload-death: bad count '{value}'"))?;
                    plan.offload_death_after(calls)
                }
                other => return Err(format!("fault-plan: unknown key '{other}'")),
            };
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for r in &self.rules {
            match r.site {
                FaultSite::DmaIn => {} // printed as the paired dma= entry via DmaOut
                FaultSite::DmaOut => write!(f, ",dma={}", ppm_to_rate(r.rate_ppm))?,
                FaultSite::DmaLatency => {
                    write!(f, ",spike={}x{}", ppm_to_rate(r.rate_ppm), r.param)?
                }
                FaultSite::Ikc => write!(f, ",ikc={}", ppm_to_rate(r.rate_ppm))?,
                FaultSite::Backing => write!(f, ",enospc={}", ppm_to_rate(r.rate_ppm))?,
                FaultSite::Offload => write!(f, ",offload-death={}", r.param)?,
            }
        }
        Ok(())
    }
}

fn rate_to_ppm(rate: f64) -> u32 {
    ((rate.clamp(0.0, 1.0) * PPM as f64).round() as u32).min(MAX_RATE_PPM)
}

fn ppm_to_rate(ppm: u32) -> f64 {
    ppm as f64 / PPM as f64
}

/// SplitMix64 — the standard 64-bit finalizer; full-avalanche, cheap.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-site salts so sites with equal rates see decorrelated schedules.
const SITE_SALT: [u64; FAULT_SITES] = [
    0xd1b5_4a32_d192_ed03,
    0xaef1_7502_b3b6_4d5e,
    0x8f01_fc21_6c3a_91b7,
    0x1bdc_9b40_6a7e_52a9,
    0x5e8a_763d_21f0_c94b,
    0x93c4_67e5_0d1a_88ff,
];

/// Per-tier salts folded into the injection hash so the same site on
/// different backing tiers draws independent failure sequences. Tier 0
/// salts with zero: a single-tier (flat) run hashes exactly as the
/// pre-tier injector did, keeping every committed faulted golden
/// byte-identical.
const TIER_SALT: [u64; MAX_TIERS] = [
    0,
    0x7b8f_0d4e_9c21_a653,
    0xc59d_3b87_14f6_e0a1,
    0x2e64_af05_d83b_7c19,
    0x9a17_c2d8_5e40_b3f7,
    0x41fb_68e3_a79d_025c,
    0xe80c_95ba_361f_d4a7,
    0x5d23_e791_b0c8_46fe,
];

/// The compiled, shared-state form of a [`FaultPlan`]: per-site rates
/// plus per-(site, tier) atomic sequence counters that make each
/// injection decision a pure function of
/// `(seed, site, tier, sequence_number)`.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rate_ppm: [u32; FAULT_SITES],
    param: [u64; FAULT_SITES],
    /// Sequence counters, one per (site, tier), flattened as
    /// `site * MAX_TIERS + tier`. Sites that never see a tier (IKC,
    /// offload) only ever touch their tier-0 counter.
    seq: [AtomicU64; FAULT_SITES * MAX_TIERS],
}

impl FaultInjector {
    /// Compiles a plan. Rates are (re-)clamped to [`MAX_RATE_PPM`].
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        let mut rate_ppm = [0u32; FAULT_SITES];
        let mut param = [0u64; FAULT_SITES];
        for r in &plan.rules {
            rate_ppm[r.site as usize] = r.rate_ppm.min(MAX_RATE_PPM);
            param[r.site as usize] = r.param;
        }
        FaultInjector {
            seed: plan.seed,
            rate_ppm,
            param,
            seq: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Whether any rule is active at all.
    pub fn armed(&self) -> bool {
        self.rate_ppm.iter().any(|&r| r > 0)
    }

    /// The site-specific parameter (spike multiplier, death threshold).
    pub fn param(&self, site: FaultSite) -> u64 {
        self.param[site as usize]
    }

    /// The offload-death call threshold, if an offload rule is set.
    pub fn offload_death_after(&self) -> Option<u64> {
        (self.rate_ppm[FaultSite::Offload as usize] > 0)
            .then(|| self.param[FaultSite::Offload as usize])
    }

    /// Rolls the dice for one operation at `site`. Returns `true` when
    /// the operation must fail. Consumes one sequence number at the
    /// site (even when the site's rate is zero, so adding a rule to one
    /// site never perturbs another site's schedule). Operations with no
    /// tier affinity roll against tier 0, whose salt is zero — this is
    /// bit-for-bit the pre-tier injector.
    pub fn roll(&self, site: FaultSite) -> bool {
        self.roll_tiered(site, 0)
    }

    /// [`FaultInjector::roll`] keyed by backing tier: each (site, tier)
    /// pair owns an independent sequence counter and folds its own salt
    /// into the hash, so per-tier failure schedules neither shift nor
    /// correlate when another tier's traffic changes.
    pub fn roll_tiered(&self, site: FaultSite, tier: usize) -> bool {
        debug_assert!(tier < MAX_TIERS, "tier {tier} out of range");
        let i = site as usize;
        let tier = tier.min(MAX_TIERS - 1);
        let n = self.seq[i * MAX_TIERS + tier].fetch_add(1, Relaxed);
        if self.rate_ppm[i] == 0 {
            return false;
        }
        let h = splitmix64(self.seed ^ SITE_SALT[i] ^ TIER_SALT[tier] ^ splitmix64(n));
        h % PPM < self.rate_ppm[i] as u64
    }

    /// [`FaultInjector::roll`], returning the site parameter on a hit.
    pub fn roll_param(&self, site: FaultSite) -> Option<u64> {
        self.roll(site).then(|| self.param[site as usize])
    }

    /// [`FaultInjector::roll_tiered`], returning the site parameter on
    /// a hit.
    pub fn roll_param_tiered(&self, site: FaultSite, tier: usize) -> Option<u64> {
        self.roll_tiered(site, tier)
            .then(|| self.param[site as usize])
    }

    /// Number of rolls taken at `site` so far across all tiers (for
    /// reports/tests).
    pub fn rolls(&self, site: FaultSite) -> u64 {
        let i = site as usize;
        (0..MAX_TIERS)
            .map(|t| self.seq[i * MAX_TIERS + t].load(Relaxed))
            .sum()
    }

    /// Number of rolls taken at `(site, tier)` so far.
    pub fn rolls_tiered(&self, site: FaultSite, tier: usize) -> u64 {
        self.seq[site as usize * MAX_TIERS + tier.min(MAX_TIERS - 1)].load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let spec = "seed=42,dma=0.01,enospc=0.005,spike=0.001x8,ikc=0.002,offload-death=1000";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 6, "dma expands to in+out");
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("dma").is_err());
        assert!(FaultPlan::parse("dma=2.0").is_err());
        assert!(FaultPlan::parse("dma=-0.1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("warp=0.5").is_err());
        assert!(FaultPlan::parse("spike=0.1xq").is_err());
    }

    #[test]
    fn rates_clamp_to_half() {
        let plan = FaultPlan::new(1).dma_errors(0.9);
        assert!(plan.rules.iter().all(|r| r.rate_ppm == MAX_RATE_PPM));
        let inj = FaultInjector::new(&plan);
        assert_eq!(inj.rate_ppm[FaultSite::DmaIn as usize], MAX_RATE_PPM);
    }

    #[test]
    fn parse_rejects_rates_above_the_cap_loudly() {
        // The CLI path must refuse, not silently clamp: a spec asking
        // for 90% DMA errors describes an experiment this simulator
        // will not run.
        for spec in ["dma=0.51", "enospc=0.9", "ikc=0.500001", "spike=0.75x4"] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                err.contains("exceeds the 0.5 cap"),
                "spec '{spec}' produced the wrong error: {err}"
            );
        }
        // Exactly the cap is fine — it is a rate this simulator runs.
        let plan = FaultPlan::parse("dma=0.5").unwrap();
        assert!(plan.rules.iter().all(|r| r.rate_ppm == MAX_RATE_PPM));
        // And the programmatic builders keep saturation semantics for
        // sweep harnesses driving them with computed values.
        let swept = FaultPlan::new(1).enospc(0.75);
        assert_eq!(swept.rules[0].rate_ppm, MAX_RATE_PPM);
    }

    #[test]
    fn injection_is_deterministic_and_site_independent() {
        let plan = FaultPlan::new(7).dma_errors(0.2).enospc(0.1);
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        let seq_a: Vec<bool> = (0..1000).map(|_| a.roll(FaultSite::DmaIn)).collect();
        // Interleave another site's rolls on `b`: DmaIn's schedule must
        // not shift.
        let seq_b: Vec<bool> = (0..1000)
            .map(|_| {
                b.roll(FaultSite::Backing);
                b.roll(FaultSite::DmaIn)
            })
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "0.2 over 1000 rolls must hit");
    }

    #[test]
    fn hit_rate_tracks_the_rule() {
        let inj = FaultInjector::new(&FaultPlan::new(3).dma_errors(0.1));
        let hits = (0..20_000).filter(|_| inj.roll(FaultSite::DmaOut)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn zero_rate_never_fires_but_still_sequences() {
        let inj = FaultInjector::new(&FaultPlan::new(9));
        assert!(!inj.armed());
        for _ in 0..100 {
            assert!(!inj.roll(FaultSite::Ikc));
        }
        assert_eq!(inj.rolls(FaultSite::Ikc), 100);
    }

    #[test]
    fn offload_death_threshold_exposed() {
        let inj = FaultInjector::new(&FaultPlan::new(1).offload_death_after(64));
        assert_eq!(inj.offload_death_after(), Some(64));
        let none = FaultInjector::new(&FaultPlan::new(1));
        assert_eq!(none.offload_death_after(), None);
    }

    #[test]
    fn tier_zero_rolls_are_the_legacy_sequence() {
        // The whole flat-golden story rests on this: an untiered call
        // site (roll) and an explicit tier-0 call site must draw the
        // same schedule, because TIER_SALT[0] == 0 reduces the hash to
        // the pre-tier formula.
        let plan = FaultPlan::new(42).dma_errors(0.2);
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        let legacy: Vec<bool> = (0..500).map(|_| a.roll(FaultSite::DmaIn)).collect();
        let tier0: Vec<bool> = (0..500)
            .map(|_| b.roll_tiered(FaultSite::DmaIn, 0))
            .collect();
        assert_eq!(legacy, tier0);
    }

    #[test]
    fn tiers_draw_independent_sequences() {
        let plan = FaultPlan::new(7).dma_errors(0.2);
        let a = FaultInjector::new(&plan);
        let b = FaultInjector::new(&plan);
        let t0: Vec<bool> = (0..1000)
            .map(|_| a.roll_tiered(FaultSite::DmaIn, 0))
            .collect();
        // Interleave heavy tier-1 traffic on `b`: tier 0's schedule
        // must not shift (per-tier sequence counters), and tier 1's
        // schedule must not mirror tier 0's (per-tier salt).
        let mut t0_interleaved = Vec::new();
        let mut t1 = Vec::new();
        for _ in 0..1000 {
            t1.push(b.roll_tiered(FaultSite::DmaIn, 1));
            b.roll_tiered(FaultSite::DmaIn, 1);
            t0_interleaved.push(b.roll_tiered(FaultSite::DmaIn, 0));
        }
        assert_eq!(t0, t0_interleaved, "tier-1 traffic shifted tier 0");
        assert_ne!(t0, t1, "tier salts failed to decorrelate");
        assert!(t1.iter().any(|&f| f), "tier 1 at 0.2 over 1000 must hit");
        assert_eq!(a.rolls_tiered(FaultSite::DmaIn, 0), 1000);
        assert_eq!(b.rolls_tiered(FaultSite::DmaIn, 1), 2000);
        assert_eq!(b.rolls(FaultSite::DmaIn), 3000, "rolls sums tiers");
    }

    #[test]
    fn tiered_schedule_is_seed_stable() {
        // Regression pin: the exact hit indices for a fixed (seed,
        // rate, site, tier). If the hash, a salt, or the sequence
        // layout changes, committed faulted goldens silently shift —
        // this test makes that loud instead.
        let inj = FaultInjector::new(&FaultPlan::new(42).dma_errors(0.1));
        let hits = |tier: usize| -> Vec<u64> {
            (0u64..200)
                .filter(|_| inj.roll_tiered(FaultSite::DmaOut, tier))
                .collect()
        };
        assert_eq!(
            hits(0),
            vec![1, 19, 31, 47, 49, 62, 67, 79, 84, 94, 100, 108, 113, 130]
        );
        assert_eq!(
            hits(1),
            vec![
                27, 28, 44, 71, 72, 85, 99, 100, 102, 112, 113, 120, 134, 149, 161, 169, 175, 177,
                185, 191, 195
            ]
        );
    }

    #[test]
    fn plan_serializes() {
        let plan = FaultPlan::new(42).dma_errors(0.01);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
