//! Per-core virtual clocks.
//!
//! Virtual time is the simulator's only notion of time: every core owns a
//! cycle counter that advances as the core executes work, misses its TLB,
//! takes page faults and so on. The reported "runtime" of a simulation is
//! the maximum clock over all cores at the final barrier.
//!
//! Cross-core charges — a shootdown IPI interrupting a remote core, for
//! example — are accumulated in an atomic *interrupt debt* on the target
//! clock and folded into the target's own timeline the next time that core
//! advances. This keeps cores loosely coupled (no global event ordering is
//! required to charge a remote core) while preserving the total cost, and
//! the frequent barriers in the HPC workloads bound the skew between the
//! instant a charge is incurred and the instant it is absorbed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual time / duration, measured in core clock cycles.
pub type Cycles = u64;

/// A core's virtual clock: an owner-advanced cycle counter plus an
/// atomically chargeable interrupt debt.
///
/// The clock is `Sync` so the parallel engine can charge remote cores
/// while each core's worker thread advances its own clock.
#[derive(Debug, Default)]
pub struct CoreClock {
    /// Cycles the core has executed, advanced only by the owning context.
    cycles: AtomicU64,
    /// Pending cycles charged by *other* cores (interrupt handling),
    /// folded into `cycles` on the next [`CoreClock::settle`].
    debt: AtomicU64,
}

impl CoreClock {
    /// A clock at time zero.
    pub fn new() -> CoreClock {
        CoreClock::default()
    }

    /// Current virtual time including unsettled interrupt debt.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.cycles.load(Ordering::Relaxed) + self.debt.load(Ordering::Relaxed)
    }

    /// Cycles of executed work, excluding unsettled debt.
    #[inline]
    pub fn executed(&self) -> Cycles {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta` cycles of the core's own work.
    ///
    /// `cycles` has a single writer (the owning context — see the field
    /// doc), so a plain load + store replaces the atomic RMW: the fault
    /// path advances the clock several times per fault and the locked
    /// add was measurable. Remote cores only ever touch `debt`.
    #[inline]
    pub fn advance(&self, delta: Cycles) {
        self.cycles.store(
            self.cycles.load(Ordering::Relaxed) + delta,
            Ordering::Relaxed,
        );
    }

    /// Charges `delta` cycles to this core from another core's timeline
    /// (e.g. the interrupt-handler cost of a TLB shootdown).
    #[inline]
    pub fn charge_remote(&self, delta: Cycles) {
        self.debt.fetch_add(delta, Ordering::Relaxed);
    }

    /// Folds any outstanding interrupt debt into the executed timeline and
    /// returns the amount absorbed.
    #[inline]
    pub fn settle(&self) -> Cycles {
        let d = self.debt.swap(0, Ordering::Relaxed);
        if d != 0 {
            // Single-writer store, like `advance` (settle runs on the
            // owning core's thread).
            self.cycles
                .store(self.cycles.load(Ordering::Relaxed) + d, Ordering::Relaxed);
        }
        d
    }

    /// Moves the clock forward to at least `t` (used when a core leaves a
    /// barrier: all participants resume at the barrier's release time).
    #[inline]
    pub fn advance_to(&self, t: Cycles) {
        let cur = self.cycles.load(Ordering::Relaxed);
        if t > cur {
            // Single-writer store, like `advance`.
            self.cycles.store(t, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_now() {
        let c = CoreClock::new();
        assert_eq!(c.now(), 0);
        c.advance(100);
        c.advance(23);
        assert_eq!(c.now(), 123);
        assert_eq!(c.executed(), 123);
    }

    #[test]
    fn remote_debt_shows_in_now_and_settles() {
        let c = CoreClock::new();
        c.advance(50);
        c.charge_remote(30);
        assert_eq!(c.now(), 80);
        assert_eq!(c.executed(), 50);
        assert_eq!(c.settle(), 30);
        assert_eq!(c.executed(), 80);
        assert_eq!(c.settle(), 0);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let c = CoreClock::new();
        c.advance(100);
        c.advance_to(80);
        assert_eq!(c.now(), 100);
        c.advance_to(150);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn concurrent_remote_charges_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(CoreClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.charge_remote(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 80_000);
        assert_eq!(c.settle(), 80_000);
    }
}
