//! Backing-tier model: an ordered hierarchy of memories behind the
//! device RAM (host HBM / DRAM / NVM / remote-CXL-style), each with its
//! own capacity, latency, and bandwidth.
//!
//! The paper's single host-DRAM backing store is the degenerate case:
//! [`TierConfig::flat`] is one unbounded tier with zero extra cost, and
//! every flat-configured run is bit-identical to the pre-tier kernel.
//! With more than one tier, the kernel demotes evicted blocks *down*
//! the hierarchy — how far is decided by CMCP's core-map-count priority
//! (see [`TierConfig::demotion_rank`]) — and pays the landing tier's
//! latency/bandwidth penalty on every page-in and write-back, on top of
//! the PCIe DMA model.
//!
//! Tier configurations have a compact spec grammar for the CLI
//! (`--tiers`), mirroring `FaultPlan`'s rule language:
//!
//! ```text
//! spec     := preset | tier (";" tier)*
//! tier     := name ":" capacity "@" latency "/" bandwidth
//! preset   := "flat" | "2tier" | "4tier"
//! ```
//!
//! where `capacity` is in 4 kB pages (`0` = unbounded, legal only for
//! the last tier), `latency` is in core cycles, and `bandwidth` is in
//! bytes per kilocycle (the same unit as the cost table's
//! `dma_bytes_per_kcycle`; `0` = no bandwidth term). `parse` and
//! `Display` round-trip exactly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;

/// Upper bound on the number of tiers. The fault-injection layer keys
/// its per-site sequences by tier, with statically sized state; eight
/// covers every hierarchy in the literature with room to spare.
pub const MAX_TIERS: usize = 8;

/// One backing tier's parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Human-readable tier name (`hbm`, `dram`, ...). Must be non-empty
    /// and use only `[A-Za-z0-9_-]` so the spec grammar stays parseable.
    pub name: String,
    /// Capacity in 4 kB pages; `0` means unbounded, which is legal only
    /// for the hierarchy's last (slowest) tier.
    pub capacity_pages: u64,
    /// Fixed access latency in core cycles, charged once per transfer
    /// that lands in (or is served from) this tier.
    pub latency: Cycles,
    /// Streaming bandwidth in bytes per kilocycle (the unit of
    /// `CostModel::dma_bytes_per_kcycle`); `0` disables the
    /// size-proportional term.
    pub bytes_per_kcycle: u64,
}

impl TierSpec {
    /// Cycles to move `bytes` into or out of this tier: the fixed
    /// latency plus the bandwidth term (mirrors
    /// `CostModel::dma_transfer`).
    pub fn penalty(&self, bytes: u64) -> Cycles {
        let bw = (bytes * 1024)
            .checked_div(self.bytes_per_kcycle)
            .unwrap_or(0);
        self.latency + bw
    }
}

impl fmt::Display for TierSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}@{}/{}",
            self.name, self.capacity_pages, self.latency, self.bytes_per_kcycle
        )
    }
}

/// An ordered backing hierarchy, fastest tier first. The default is
/// [`TierConfig::flat`] — the paper's single host-DRAM store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierConfig {
    /// The tiers, index 0 fastest. Never empty; the last tier is the
    /// only one allowed to be unbounded, so a store that cascades
    /// demotions downward always terminates.
    pub tiers: Vec<TierSpec>,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig::flat()
    }
}

impl TierConfig {
    /// The degenerate single-tier hierarchy: unbounded, zero latency,
    /// no bandwidth term. Runs configured with it are bit-identical to
    /// the pre-tier kernel.
    pub fn flat() -> TierConfig {
        TierConfig {
            tiers: vec![TierSpec {
                name: "host".to_string(),
                capacity_pages: 0,
                latency: 0,
                bytes_per_kcycle: 0,
            }],
        }
    }

    /// `true` for hierarchies with a single zero-cost unbounded tier —
    /// the kernel takes the legacy flat-store code path for these.
    pub fn is_flat(&self) -> bool {
        self.tiers.len() == 1 && {
            let t = &self.tiers[0];
            t.capacity_pages == 0 && t.latency == 0 && t.bytes_per_kcycle == 0
        }
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// A `TierConfig` is never empty ([`TierConfig::validate`] rejects
    /// it); provided for clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Parses a spec string (grammar in the module docs) or one of the
    /// presets `flat`, `2tier`, `4tier`.
    pub fn parse(spec: &str) -> Result<TierConfig, String> {
        let spec = spec.trim();
        match spec {
            "flat" => return Ok(TierConfig::flat()),
            "2tier" => return TierConfig::parse("dram:4096@2100/5834;cold:0@8400/1500"),
            "4tier" => {
                return TierConfig::parse(
                    "hbm:1024@300/20000;dram:4096@2100/5834;nvm:16384@8400/1500;cxl:0@16800/700",
                )
            }
            _ => {}
        }
        let mut tiers = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            let (name, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("tier `{part}`: expected name:capacity@latency/bw"))?;
            let (cap, rest) = rest
                .split_once('@')
                .ok_or_else(|| format!("tier `{part}`: missing `@latency`"))?;
            let (lat, bw) = rest
                .split_once('/')
                .ok_or_else(|| format!("tier `{part}`: missing `/bandwidth`"))?;
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!(
                    "tier name `{name}` must be non-empty [A-Za-z0-9_-]"
                ));
            }
            let num = |label: &str, s: &str| -> Result<u64, String> {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("tier `{name}`: bad {label} `{s}`"))
            };
            tiers.push(TierSpec {
                name: name.to_string(),
                capacity_pages: num("capacity", cap)?,
                latency: num("latency", lat)?,
                bytes_per_kcycle: num("bandwidth", bw)?,
            });
        }
        let cfg = TierConfig { tiers };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the structural invariants the kernel's tier store relies
    /// on: 1..=[`MAX_TIERS`] tiers, unique names, an unbounded last
    /// tier, and bounded capacity everywhere else.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("tier config must name at least one tier".to_string());
        }
        if self.tiers.len() > MAX_TIERS {
            return Err(format!(
                "{} tiers exceeds the supported maximum of {MAX_TIERS}",
                self.tiers.len()
            ));
        }
        let last = self.tiers.len() - 1;
        for (i, t) in self.tiers.iter().enumerate() {
            if t.name.is_empty() {
                return Err(format!("tier {i} has an empty name"));
            }
            if t.capacity_pages == 0 && i != last {
                return Err(format!(
                    "tier `{}` is unbounded but not last; demotions below it could never land",
                    t.name
                ));
            }
            if self.tiers[..i].iter().any(|o| o.name == t.name) {
                return Err(format!("duplicate tier name `{}`", t.name));
            }
        }
        if self.tiers[last].capacity_pages != 0 {
            return Err(format!(
                "last tier `{}` must be unbounded (capacity 0) so evictions always land",
                self.tiers[last].name
            ));
        }
        Ok(())
    }

    /// Which tier an evicted block should land in, from CMCP's
    /// core-map-count priority: blocks many cores still map (`>= 2`)
    /// stay in the fastest backing tier, singly-mapped blocks go one
    /// down, and unmapped cold blocks go two down — clamped to the
    /// hierarchy's depth. The flat hierarchy always answers 0.
    pub fn demotion_rank(&self, map_count: u32) -> usize {
        let want = match map_count {
            0 => 2,
            1 => 1,
            _ => 0,
        };
        want.min(self.tiers.len() - 1)
    }
}

impl fmt::Display for TierConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_default_and_zero_cost() {
        let cfg = TierConfig::default();
        assert!(cfg.is_flat());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.tiers[0].penalty(1 << 21), 0);
        cfg.validate().unwrap();
    }

    #[test]
    fn parse_display_round_trips() {
        for spec in [
            "host:0@0/0",
            "dram:4096@2100/5834;cold:0@8400/1500",
            "hbm:1024@300/20000;dram:4096@2100/5834;nvm:16384@8400/1500;cxl:0@16800/700",
            "a:1@2/3;b_2:0@0/0",
        ] {
            let cfg = TierConfig::parse(spec).unwrap();
            assert_eq!(cfg.to_string(), spec);
            assert_eq!(TierConfig::parse(&cfg.to_string()).unwrap(), cfg);
        }
    }

    #[test]
    fn presets_resolve_and_validate() {
        assert!(TierConfig::parse("flat").unwrap().is_flat());
        assert_eq!(TierConfig::parse("2tier").unwrap().len(), 2);
        let four = TierConfig::parse("4tier").unwrap();
        assert_eq!(four.len(), 4);
        four.validate().unwrap();
        assert!(!four.is_flat());
    }

    #[test]
    fn bad_specs_are_rejected_loudly() {
        for (spec, needle) in [
            ("", "name:capacity"),
            ("dram:16@50", "bandwidth"),
            ("dram:16", "@latency"),
            ("dr@m:16@50/100", "name"),
            ("dram:x@50/100", "capacity"),
            ("dram:16@50/100", "unbounded"),  // bounded last tier
            ("a:0@1/1;b:0@0/0", "not last"),  // unbounded inner tier
            ("a:1@0/0;a:0@0/0", "duplicate"), // duplicate name
            (
                "a:1@0/0;b:1@0/0;c:1@0/0;d:1@0/0;e:1@0/0;f:1@0/0;g:1@0/0;h:1@0/0;i:0@0/0",
                "maximum",
            ),
        ] {
            let err = TierConfig::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec `{spec}`: {err}");
        }
    }

    #[test]
    fn penalty_matches_the_dma_formula() {
        let t = TierSpec {
            name: "nvm".to_string(),
            capacity_pages: 16384,
            latency: 8400,
            bytes_per_kcycle: 1500,
        };
        assert_eq!(t.penalty(0), 8400);
        assert_eq!(t.penalty(4096), 8400 + 4096 * 1024 / 1500);
    }

    #[test]
    fn demotion_rank_follows_map_count_and_clamps() {
        let four = TierConfig::parse("4tier").unwrap();
        assert_eq!(four.demotion_rank(7), 0);
        assert_eq!(four.demotion_rank(2), 0);
        assert_eq!(four.demotion_rank(1), 1);
        assert_eq!(four.demotion_rank(0), 2);
        let two = TierConfig::parse("2tier").unwrap();
        assert_eq!(two.demotion_rank(0), 1);
        assert_eq!(two.demotion_rank(5), 0);
        assert_eq!(TierConfig::flat().demotion_rank(0), 0);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = TierConfig::parse("2tier").unwrap();
        let v = serde::Serialize::to_value(&cfg);
        let back: TierConfig = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, cfg);
    }
}
