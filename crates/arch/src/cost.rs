//! The cycle cost table driving all virtual-time accounting.
//!
//! Absolute constants are calibrated from three sources:
//!
//! * the paper itself: 1.053 GHz cores, up to 6 GB/s measured PCIe
//!   bandwidth between host and MIC, a 10 ms accessed-bit scan timer, and
//!   the qualitative statement that the remote-TLB-invalidation IPI loop
//!   is serialized per target and "extremely expensive";
//! * the Knights Corner Software Developer's Guide (TLB geometry, the
//!   cost of `INVLPG`, interrupt delivery);
//! * published microbenchmarks of IPI round-trip and page-fault handling
//!   latencies on KNC-class in-order cores.
//!
//! The reproduction's claims are *relative* (policy vs policy, scaling
//! shapes, crossover locations), so what matters is that each cost grows
//! with the same variable it grows with on real hardware: shootdown cost
//! with the number of target cores, transfer cost with the page size,
//! fault-path serialization with the fault rate. Every constant can be
//! overridden to run sensitivity studies (see the `ablation_ipi` bench).

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;
use crate::numa::NumaConfig;
use crate::tier::TierConfig;
use crate::types::PageSize;

/// Cycle costs for every simulated hardware and kernel operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Core clock frequency in kHz (1.053 GHz on the 5110P). Only used to
    /// convert virtual cycles into seconds for reporting.
    pub core_khz: u64,

    /// Cost of one coalesced unit of application work (one element-level
    /// load/store plus its share of arithmetic) when the TLB hits.
    pub work_unit: Cycles,

    /// Extra cost of an L1 TLB miss that hits in the L2 TLB.
    pub tlb_l2_hit: Cycles,

    /// Extra cost of a full TLB miss: the hardware page-table walk.
    /// KNC's in-order cores stall the thread for the whole walk.
    pub page_walk: Cycles,

    /// Cost of invalidating one local TLB entry (`INVLPG`).
    pub tlb_invlpg: Cycles,

    /// Cost of a full local TLB flush (CR3 reload).
    pub tlb_flush: Cycles,

    /// Trap + fault-handler entry/exit: charged to the faulting core for
    /// every page fault on top of everything the handler does.
    pub fault_base: Cycles,

    /// Fixed cost of consulting one other core's page table during a PSPT
    /// fault (the "copy a PTE if any valid mapping exists" step).
    pub pspt_probe: Cycles,

    /// Cost of writing one PTE (set-up or tear-down).
    pub pte_update: Cycles,

    /// Requester-side cost of *sending* one TLB-shootdown IPI. The paper
    /// describes TLB invalidation as "looping through each CPU core and
    /// sending an Inter-processor Interrupt", i.e. the requester pays this
    /// once per target, serialized.
    pub ipi_send: Cycles,

    /// Target-side cost of taking the shootdown interrupt, invalidating
    /// the TLB entry and acknowledging.
    pub ipi_handle: Cycles,

    /// Requester-side fixed cost of waiting for the *last* acknowledgement
    /// once all IPIs are out (the ack fan-in).
    pub ipi_ack_base: Cycles,

    /// Additional ack-wait cost per target (ring occupancy + cache-line
    /// ping-pong on the request structure; the paper reports up to 8×
    /// growth in lock cycles for these structures under LRU).
    pub ipi_ack_per_target: Cycles,

    /// Hold time of the address-space-wide page-table lock that *regular*
    /// page tables take on every fault and every unmap. This is the
    /// serialization that stops regular PT from scaling past ~24 cores.
    pub regular_pt_lock: Cycles,

    /// Hold time of the per-core fine-grained lock PSPT takes instead.
    pub pspt_lock: Cycles,

    /// DMA descriptor setup + doorbell + completion interrupt (per
    /// transfer, independent of size).
    pub dma_latency: Cycles,

    /// PCIe streaming throughput, expressed as bytes moved per 1024
    /// cycles. 6 GB/s at 1.053 GHz is ≈ 5.7 bytes/cycle ⇒ 5834 b/kcyc.
    pub dma_bytes_per_kcycle: u64,

    /// Cost of examining one PTE during an accessed-bit scan pass
    /// (read + test + conditional clear, excluding the shootdown).
    pub scan_pte: Cycles,

    /// Virtual-time period of the LRU accessed-bit scan timer. The paper
    /// uses a 10 ms timer (10 ms × 1.053 GHz ≈ 10.53 M cycles).
    pub scan_period: Cycles,

    /// Per-hop latency of the bidirectional ring interconnect, used by
    /// the IPI model for distance-dependent delivery.
    pub ring_hop: Cycles,

    /// The backing-tier hierarchy behind the device RAM (see
    /// [`crate::tier`]). The default is the paper's flat host-DRAM
    /// store: one unbounded zero-cost tier, bit-identical to the
    /// pre-tier kernel. Deeper hierarchies charge each transfer the
    /// landing tier's latency/bandwidth penalty on top of the PCIe DMA
    /// model above.
    pub tiers: TierConfig,

    /// The NUMA topology (see [`crate::numa`]). The default is the
    /// paper's single-node machine: one unbounded zero-cost node,
    /// bit-identical to the pre-NUMA kernel. Multi-node topologies give
    /// every resident block a home node, charge the inter-node link on
    /// remote accesses, and (with replication on) keep per-node
    /// page-table replicas coherent from PSPT's exact mapping sets.
    pub numa: NumaConfig,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            core_khz: 1_053_000,
            work_unit: 4,
            tlb_l2_hit: 8,
            page_walk: 120,
            tlb_invlpg: 120,
            tlb_flush: 500,
            fault_base: 1_800,
            pspt_probe: 40,
            pte_update: 60,
            ipi_send: 700,
            ipi_handle: 1_400,
            ipi_ack_base: 1_800,
            ipi_ack_per_target: 250,
            regular_pt_lock: 1_500,
            pspt_lock: 350,
            dma_latency: 2_100,
            dma_bytes_per_kcycle: 5_834,
            scan_pte: 45,
            scan_period: 10_530_000,
            ring_hop: 15,
            tiers: TierConfig::flat(),
            numa: NumaConfig::single(),
        }
    }
}

impl CostModel {
    /// Pure transfer time (no queueing) of moving `bytes` across PCIe.
    #[inline]
    pub fn dma_transfer(&self, bytes: u64) -> Cycles {
        self.dma_latency + bytes * 1024 / self.dma_bytes_per_kcycle
    }

    /// Pure transfer time of moving one page of `size`.
    #[inline]
    pub fn dma_page(&self, size: PageSize) -> Cycles {
        self.dma_transfer(size.bytes())
    }

    /// Requester-side cost of a shootdown to `targets` cores: the
    /// serialized send loop plus the ack fan-in wait. Zero targets cost
    /// nothing (purely local invalidation is charged separately).
    #[inline]
    pub fn shootdown_requester(&self, targets: usize) -> Cycles {
        if targets == 0 {
            return 0;
        }
        self.ipi_send * targets as u64
            + self.ipi_ack_base
            + self.ipi_ack_per_target * targets as u64
    }

    /// Target-side cost of receiving one shootdown for `entries` TLB
    /// entries (a 64 kB invalidation is still a single `INVLPG`-visible
    /// entry on KNC, so `entries` is almost always 1).
    #[inline]
    pub fn shootdown_target(&self, entries: usize) -> Cycles {
        self.ipi_handle + self.tlb_invlpg * entries.max(1) as u64
    }

    /// The minimum virtual-time latency by which one core's kernel
    /// activity can perturb another core's *locally observable* state —
    /// the epoch window of the sharded engine.
    ///
    /// Every kernel entry (fault, syscall, timer) is executed at an
    /// exact virtual-time stamp by the engine's sequential commit phase,
    /// so the lock-handoff and IKC channels are ordered precisely and
    /// impose no bound here. The one channel that reaches a core *not*
    /// in the kernel is the TLB shootdown: an eviction committed at time
    /// `t` cannot invalidate a remote translation before the IPI has
    /// been sent and handled, i.e. before `t + ipi_send + ipi_handle`.
    /// A core running ahead inside one window therefore never uses a
    /// translation staler than real hardware would permit.
    ///
    /// On a multi-node topology the inter-node link is a second
    /// cross-core channel (replica syncs, remote walks), so the window
    /// is the global minimum over the IPI path and every node pair.
    /// [`NumaConfig::check_window`] rejects topologies whose links are
    /// faster than the IPI window at validation time, so for accepted
    /// configurations the minimum below never actually shrinks — the
    /// `min` is defense in depth against an unvalidated cost table.
    ///
    /// Clamped to at least 1 cycle so a degenerate all-zero cost table
    /// still yields a forward-moving epoch ceiling.
    #[inline]
    pub fn min_cross_core_latency(&self) -> Cycles {
        let ipi = self.ipi_send + self.ipi_handle;
        self.numa
            .min_cross_latency()
            .map_or(ipi, |link| ipi.min(link))
            .max(1)
    }

    /// Converts cycles into seconds using the configured frequency.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: Cycles) -> f64 {
        cycles as f64 / (self.core_khz as f64 * 1000.0)
    }

    /// Converts cycles into milliseconds.
    #[inline]
    pub fn cycles_to_millis(&self, cycles: Cycles) -> f64 {
        self.cycles_to_secs(cycles) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numa::NodeSpec;

    #[test]
    fn default_is_calibrated_to_paper() {
        let c = CostModel::default();
        // 1.053 GHz.
        assert_eq!(c.core_khz, 1_053_000);
        // 10 ms scan period at 1.053 GHz.
        assert_eq!(c.scan_period, 10_530_000);
        // ~6 GB/s: a 4 kB transfer should take on the order of a
        // microsecond of streaming plus the fixed latency.
        let t = c.dma_transfer(4096) - c.dma_latency;
        assert!((600..900).contains(&t), "4kB streaming time {t}");
    }

    #[test]
    fn dma_scales_linearly_with_page_size() {
        let c = CostModel::default();
        let t4 = c.dma_page(PageSize::K4) - c.dma_latency;
        let t64 = c.dma_page(PageSize::K64) - c.dma_latency;
        let t2m = c.dma_page(PageSize::M2) - c.dma_latency;
        // 16× and 512× the bytes → within rounding of 16× and 512× time.
        assert!((t64 as f64 / t4 as f64 - 16.0).abs() < 0.1);
        assert!((t2m as f64 / t4 as f64 - 512.0).abs() < 1.0);
    }

    #[test]
    fn shootdown_grows_linearly_with_targets() {
        let c = CostModel::default();
        assert_eq!(c.shootdown_requester(0), 0);
        let one = c.shootdown_requester(1);
        let fifty = c.shootdown_requester(50);
        assert!(fifty > one * 15, "50-target shootdown must dwarf 1-target");
        let diff = c.shootdown_requester(11) - c.shootdown_requester(10);
        assert_eq!(diff, c.ipi_send + c.ipi_ack_per_target);
    }

    #[test]
    fn target_cost_has_interrupt_floor() {
        let c = CostModel::default();
        assert_eq!(c.shootdown_target(0), c.ipi_handle + c.tlb_invlpg);
        assert_eq!(c.shootdown_target(2), c.ipi_handle + 2 * c.tlb_invlpg);
    }

    #[test]
    fn epoch_window_is_the_shootdown_delivery_latency() {
        let c = CostModel::default();
        assert_eq!(c.min_cross_core_latency(), c.ipi_send + c.ipi_handle);
        // A zeroed table must still give a forward-moving window.
        let zero = CostModel {
            ipi_send: 0,
            ipi_handle: 0,
            ..CostModel::default()
        };
        assert_eq!(zero.min_cross_core_latency(), 1);
    }

    #[test]
    fn epoch_window_takes_the_numa_global_minimum() {
        let mut c = CostModel::default();
        // Single node: the NUMA layer imposes no bound.
        assert_eq!(c.min_cross_core_latency(), c.ipi_send + c.ipi_handle);
        // Links slower than the IPI window leave it untouched.
        c.numa = NumaConfig::parse("2node").unwrap();
        assert_eq!(c.min_cross_core_latency(), c.ipi_send + c.ipi_handle);
        // A (validation-rejected) faster link would shrink the window —
        // the engine must still never run past the true global minimum.
        c.numa = NumaConfig {
            nodes: vec![
                NodeSpec {
                    name: "a".to_string(),
                    capacity_pages: 1,
                    link_latency: 400,
                    bytes_per_kcycle: 0,
                },
                NodeSpec {
                    name: "b".to_string(),
                    capacity_pages: 1,
                    link_latency: 500,
                    bytes_per_kcycle: 0,
                },
            ],
            replicate: true,
        };
        assert!(c.numa.check_window(c.ipi_send + c.ipi_handle).is_err());
        assert_eq!(c.min_cross_core_latency(), 900);
    }

    #[test]
    fn time_conversions() {
        let c = CostModel::default();
        let secs = c.cycles_to_secs(1_053_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
        assert!((c.cycles_to_millis(10_530_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let c = CostModel::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
