//! Fundamental identifier types shared by every layer of the simulator.
//!
//! All of these are thin newtypes. Using distinct types for virtual pages,
//! physical frames and cores makes it impossible to, say, index a frame
//! table with a virtual page number — a class of bug that plagues page
//! replacement code written against bare integers.

use std::fmt;

/// Maximum number of simulated cores supported by [`CoreSet`].
///
/// The Knights Corner card has 60 cores plus 4-way hyperthreading; the
/// paper uses at most 56 application cores and dedicates some hyperthreads
/// to LRU statistics collection. 256 leaves room for "future standalone
/// many-core" experiments (Knights Landing had 72 cores) without making
/// `CoreSet` heap-allocated.
pub const MAX_CORES: usize = 256;

const WORDS: usize = MAX_CORES / 64;

/// Identifier of a simulated CPU core (hardware thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Index usable for array access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A virtual page number: the virtual address shifted right by 12.
///
/// The simulator tracks memory at 4 kB granularity everywhere; larger
/// pages (64 kB, 2 MB) are expressed as aligned *runs* of 4 kB pages, the
/// same way the Xeon Phi 64 kB extension builds a large mapping out of 16
/// consecutive 4 kB PTEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtPage(pub u64);

impl VirtPage {
    /// The first byte address covered by this page.
    #[inline]
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 << 12)
    }

    /// Rounds this page number *down* to the start of the enclosing
    /// naturally aligned block of `size`.
    #[inline]
    pub fn align_down(self, size: PageSize) -> VirtPage {
        let span = size.pages_4k() as u64;
        VirtPage(self.0 / span * span)
    }

    /// Whether this page number is naturally aligned for `size`.
    #[inline]
    pub fn is_aligned(self, size: PageSize) -> bool {
        self.0.is_multiple_of(size.pages_4k() as u64)
    }

    /// The page `n` positions after this one.
    #[inline]
    #[allow(clippy::should_implement_trait)] // offsets by a scalar, not a page
    pub fn add(self, n: u64) -> VirtPage {
        VirtPage(self.0 + n)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp:{:#x}", self.0)
    }
}

/// A byte-granular virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The 4 kB virtual page containing this address.
    #[inline]
    pub fn page(self) -> VirtPage {
        VirtPage(self.0 >> 12)
    }

    /// Offset of this address within its 4 kB page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & 0xfff
    }
}

/// A physical frame number on the co-processor's on-board RAM.
///
/// Like [`VirtPage`], frames are 4 kB-granular; a 64 kB or 2 MB physical
/// allocation is an aligned run of frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysFrame(pub u32);

impl PhysFrame {
    /// Index usable for array access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The frame `n` positions after this one.
    #[inline]
    #[allow(clippy::should_implement_trait)] // offsets by a scalar, not a frame
    pub fn add(self, n: u32) -> PhysFrame {
        PhysFrame(self.0 + n)
    }
}

impl fmt::Display for PhysFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pf:{:#x}", self.0)
    }
}

/// The three page sizes supported by the Xeon Phi MMU.
///
/// 64 kB is the experimental intermediate size the paper implements for
/// the first time (its hardware encoding — 16 consecutive 4 kB PTEs plus a
/// hint bit — lives in `cmcp-pagetable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// Regular 4 kB page.
    K4,
    /// Experimental 64 kB page (16 × 4 kB, hint bit in the PTEs).
    K64,
    /// 2 MB large page.
    M2,
}

impl PageSize {
    /// All sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::K4, PageSize::K64, PageSize::M2];

    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::K4 => 4 << 10,
            PageSize::K64 => 64 << 10,
            PageSize::M2 => 2 << 20,
        }
    }

    /// Number of 4 kB pages this size spans (1, 16, 512).
    #[inline]
    pub fn pages_4k(self) -> usize {
        (self.bytes() >> 12) as usize
    }

    /// log2 of the size in bytes (12, 16, 21).
    #[inline]
    pub fn shift(self) -> u32 {
        self.bytes().trailing_zeros()
    }

    /// The next smaller granularity a block of this size splits into
    /// (2 MB → 64 kB → 4 kB), or `None` for 4 kB.
    #[inline]
    pub fn split_child(self) -> Option<PageSize> {
        match self {
            PageSize::K4 => None,
            PageSize::K64 => Some(PageSize::K4),
            PageSize::M2 => Some(PageSize::K64),
        }
    }

    /// The next larger granularity (inverse of
    /// [`PageSize::split_child`]), or `None` for 2 MB.
    #[inline]
    pub fn merge_parent(self) -> Option<PageSize> {
        match self {
            PageSize::K4 => Some(PageSize::K64),
            PageSize::K64 => Some(PageSize::M2),
            PageSize::M2 => None,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::K4 => write!(f, "4kB"),
            PageSize::K64 => write!(f, "64kB"),
            PageSize::M2 => write!(f, "2MB"),
        }
    }
}

/// A fixed-size bitset of cores, the central data structure of PSPT
/// bookkeeping: for every physical page the kernel tracks *which cores
/// hold a valid PTE for it*, and CMCP's priority signal is simply
/// [`CoreSet::count`].
///
/// Supports up to [`MAX_CORES`] cores without heap allocation so it can be
/// embedded in per-page metadata by value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreSet {
    words: [u64; WORDS],
}

impl CoreSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> CoreSet {
        CoreSet { words: [0; WORDS] }
    }

    /// A set containing exactly one core.
    #[inline]
    pub fn single(core: CoreId) -> CoreSet {
        let mut s = CoreSet::empty();
        s.insert(core);
        s
    }

    /// A set containing cores `0..n`.
    pub fn first_n(n: usize) -> CoreSet {
        assert!(n <= MAX_CORES, "CoreSet supports at most {MAX_CORES} cores");
        let mut s = CoreSet::empty();
        for c in 0..n {
            s.insert(CoreId(c as u16));
        }
        s
    }

    /// Adds `core`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, core: CoreId) -> bool {
        let (w, b) = Self::locate(core);
        let had = self.words[w] & b != 0;
        self.words[w] |= b;
        !had
    }

    /// Removes `core`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, core: CoreId) -> bool {
        let (w, b) = Self::locate(core);
        let had = self.words[w] & b != 0;
        self.words[w] &= !b;
        had
    }

    /// Whether `core` is in the set.
    #[inline]
    pub fn contains(&self, core: CoreId) -> bool {
        let (w, b) = Self::locate(core);
        self.words[w] & b != 0
    }

    /// Number of cores in the set — CMCP's priority signal.
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union, in place.
    #[inline]
    pub fn union_with(&mut self, other: &CoreSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Removes every core in `other` from `self`.
    #[inline]
    pub fn subtract(&mut self, other: &CoreSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Removes all cores.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterates the member cores in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter { word }.map(move |b| CoreId((wi * 64 + b) as u16)))
    }

    #[inline]
    fn locate(core: CoreId) -> (usize, u64) {
        let i = core.index();
        assert!(i < MAX_CORES, "core id {i} out of range");
        (i / 64, 1u64 << (i % 64))
    }
}

impl fmt::Debug for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|c| c.0)).finish()
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<T: IntoIterator<Item = CoreId>>(iter: T) -> CoreSet {
        let mut s = CoreSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants() {
        assert_eq!(PageSize::K4.bytes(), 4096);
        assert_eq!(PageSize::K64.bytes(), 65536);
        assert_eq!(PageSize::M2.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::K4.pages_4k(), 1);
        assert_eq!(PageSize::K64.pages_4k(), 16);
        assert_eq!(PageSize::M2.pages_4k(), 512);
        assert_eq!(PageSize::K4.shift(), 12);
        assert_eq!(PageSize::K64.shift(), 16);
        assert_eq!(PageSize::M2.shift(), 21);
    }

    #[test]
    fn virt_addr_page_split() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.page(), VirtPage(0x0001_2345));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.page().base_addr(), VirtAddr(0x1234_5000));
    }

    #[test]
    fn page_alignment() {
        let p = VirtPage(0x1234);
        assert_eq!(p.align_down(PageSize::K64), VirtPage(0x1230));
        assert_eq!(p.align_down(PageSize::M2), VirtPage(0x1200));
        assert!(VirtPage(0x1230).is_aligned(PageSize::K64));
        assert!(!VirtPage(0x1231).is_aligned(PageSize::K64));
        assert!(VirtPage(0).is_aligned(PageSize::M2));
    }

    #[test]
    fn coreset_insert_remove_contains() {
        let mut s = CoreSet::empty();
        assert!(s.is_empty());
        assert!(s.insert(CoreId(3)));
        assert!(!s.insert(CoreId(3)));
        assert!(s.contains(CoreId(3)));
        assert!(!s.contains(CoreId(4)));
        assert_eq!(s.count(), 1);
        assert!(s.remove(CoreId(3)));
        assert!(!s.remove(CoreId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn coreset_spans_words() {
        let mut s = CoreSet::empty();
        s.insert(CoreId(0));
        s.insert(CoreId(63));
        s.insert(CoreId(64));
        s.insert(CoreId(255));
        assert_eq!(s.count(), 4);
        let ids: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 63, 64, 255]);
    }

    #[test]
    fn coreset_first_n() {
        let s = CoreSet::first_n(56);
        assert_eq!(s.count(), 56);
        assert!(s.contains(CoreId(0)));
        assert!(s.contains(CoreId(55)));
        assert!(!s.contains(CoreId(56)));
    }

    #[test]
    fn coreset_union_subtract() {
        let mut a = CoreSet::first_n(4);
        let b: CoreSet = [CoreId(2), CoreId(3), CoreId(70)].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.count(), 5);
        a.subtract(&b);
        let ids: Vec<u16> = a.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coreset_rejects_out_of_range() {
        let mut s = CoreSet::empty();
        s.insert(CoreId(256));
    }

    #[test]
    fn coreset_debug_format() {
        let s: CoreSet = [CoreId(1), CoreId(5)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }
}
