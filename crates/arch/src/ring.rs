//! The bidirectional ring interconnect of the Knights Corner chip.
//!
//! Cores, L2 slices and the memory controllers sit on a bidirectional
//! ring; an IPI from core *a* to core *b* travels `min(|a-b|, n-|a-b|)`
//! hops in the shorter direction. The per-hop latency is small compared
//! with the interrupt-delivery cost, but it gives shootdown latency a
//! realistic dependence on *which* cores map a page, and it is the knob
//! the `ablation_ipi` bench turns to model the hardware multicast
//! invalidation the paper asks vendors for in §3.

use crate::clock::Cycles;
use crate::cost::CostModel;
use crate::types::{CoreId, CoreSet};

/// Ring-topology distance and IPI latency model.
#[derive(Debug, Clone)]
pub struct RingModel {
    cores: usize,
    hop_cycles: Cycles,
    ipi_send: Cycles,
    ipi_handle: Cycles,
    ipi_ack_base: Cycles,
    ipi_ack_per_target: Cycles,
    tlb_invlpg: Cycles,
}

/// Cost of a shootdown, split by who pays it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShootdownCost {
    /// Charged to the requesting core: serialized send loop, ring
    /// traversal to the farthest target, ack fan-in.
    pub requester: Cycles,
    /// Charged to *each* target core: interrupt entry, `INVLPG`, ack.
    pub per_target: Cycles,
    /// Number of targets (kept for statistics).
    pub targets: usize,
}

impl RingModel {
    /// Builds the ring for `cores` cores using the latency constants of
    /// `cost`.
    pub fn new(cores: usize, cost: &CostModel) -> RingModel {
        assert!(cores > 0, "ring needs at least one core");
        RingModel {
            cores,
            hop_cycles: cost.ring_hop,
            ipi_send: cost.ipi_send,
            ipi_handle: cost.ipi_handle,
            ipi_ack_base: cost.ipi_ack_base,
            ipi_ack_per_target: cost.ipi_ack_per_target,
            tlb_invlpg: cost.tlb_invlpg,
        }
    }

    /// Number of cores on the ring.
    #[inline]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Hop distance between two cores along the shorter ring direction.
    #[inline]
    pub fn distance(&self, a: CoreId, b: CoreId) -> usize {
        let (a, b) = (a.index() % self.cores, b.index() % self.cores);
        let d = a.abs_diff(b);
        d.min(self.cores - d)
    }

    /// Ring traversal latency between two cores.
    #[inline]
    pub fn latency(&self, a: CoreId, b: CoreId) -> Cycles {
        self.distance(a, b) as u64 * self.hop_cycles
    }

    /// Full cost of `requester` shooting down one TLB entry on every core
    /// in `targets` (the requester itself is skipped if present — local
    /// invalidation is charged separately by the kernel).
    pub fn shootdown(&self, requester: CoreId, targets: &CoreSet) -> ShootdownCost {
        let mut n = 0usize;
        let mut max_latency = 0;
        for t in targets.iter() {
            if t == requester {
                continue;
            }
            n += 1;
            max_latency = max_latency.max(self.latency(requester, t));
        }
        if n == 0 {
            return ShootdownCost::default();
        }
        ShootdownCost {
            requester: self.ipi_send * n as u64
                + max_latency
                + self.ipi_ack_base
                + self.ipi_ack_per_target * n as u64,
            per_target: self.ipi_handle + self.tlb_invlpg,
            targets: n,
        }
    }

    /// Shootdown cost for a broadcast to all cores except the requester —
    /// what *regular* (shared) page tables must do on every remap, because
    /// centralized bookkeeping cannot tell which cores cached the entry.
    pub fn broadcast_shootdown(&self, requester: CoreId, active_cores: usize) -> ShootdownCost {
        let targets = CoreSet::first_n(active_cores.min(self.cores));
        self.shootdown(requester, &targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> RingModel {
        RingModel::new(n, &CostModel::default())
    }

    #[test]
    fn distance_wraps_both_directions() {
        let r = ring(60);
        assert_eq!(r.distance(CoreId(0), CoreId(0)), 0);
        assert_eq!(r.distance(CoreId(0), CoreId(1)), 1);
        assert_eq!(r.distance(CoreId(0), CoreId(59)), 1);
        assert_eq!(r.distance(CoreId(0), CoreId(30)), 30);
        assert_eq!(r.distance(CoreId(10), CoreId(50)), 20);
    }

    #[test]
    fn distance_is_symmetric() {
        let r = ring(56);
        for a in 0..56u16 {
            for b in 0..56u16 {
                assert_eq!(
                    r.distance(CoreId(a), CoreId(b)),
                    r.distance(CoreId(b), CoreId(a))
                );
            }
        }
    }

    #[test]
    fn shootdown_skips_requester() {
        let r = ring(8);
        let mut t = CoreSet::empty();
        t.insert(CoreId(0));
        let c = r.shootdown(CoreId(0), &t);
        assert_eq!(c, ShootdownCost::default());
    }

    #[test]
    fn shootdown_cost_grows_with_targets() {
        let r = ring(56);
        let two = r.shootdown(CoreId(0), &CoreSet::first_n(3)); // cores 1,2
        let all = r.shootdown(CoreId(0), &CoreSet::first_n(56)); // 55 targets
        assert_eq!(two.targets, 2);
        assert_eq!(all.targets, 55);
        assert!(all.requester > two.requester * 10);
        assert_eq!(two.per_target, all.per_target);
    }

    #[test]
    fn broadcast_matches_explicit_full_set() {
        let r = ring(40);
        let explicit = r.shootdown(CoreId(5), &CoreSet::first_n(40));
        let broadcast = r.broadcast_shootdown(CoreId(5), 40);
        assert_eq!(explicit, broadcast);
    }

    #[test]
    fn per_target_cost_is_interrupt_plus_invlpg() {
        let cost = CostModel::default();
        let r = RingModel::new(16, &cost);
        let c = r.shootdown(CoreId(0), &CoreSet::first_n(4));
        assert_eq!(c.per_target, cost.ipi_handle + cost.tlb_invlpg);
    }
}
