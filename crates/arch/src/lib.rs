//! # cmcp-arch — many-core architecture substrate
//!
//! This crate models the hardware that the HPDC'14 CMCP paper ran on: an
//! Intel Xeon Phi "Knights Corner" style many-core co-processor. The real
//! silicon is discontinued, so every mechanism the paper's evaluation
//! depends on is reproduced as an explicit, calibrated model:
//!
//! * [`types`] — core / page / frame newtypes, page sizes (4 kB, 64 kB,
//!   2 MB) and the [`types::CoreSet`] bitset used to track which cores map
//!   a page.
//! * [`cost`] — the cycle cost table ([`cost::CostModel`]) with constants
//!   derived from the paper (1.053 GHz cores, ~6 GB/s PCIe) and the
//!   Knights Corner Software Developer's Guide.
//! * [`tlb`] — per-core two-level set-associative TLBs with separate
//!   4 kB / 64 kB / 2 MB entry classes and per-core miss statistics.
//! * [`ring`] — the bidirectional ring interconnect and the IPI cost
//!   model: a *serialized* send loop on the requester plus an interrupt
//!   handler charge on every target, which is exactly the cost structure
//!   the paper blames for LRU's accessed-bit scanning overhead.
//! * [`dma`] — the PCIe DMA engine transfer-time model used for page
//!   movement between device RAM and the host backing store.
//! * [`ikc`] — the IHK Inter-Kernel Communication channel used for
//!   host-offloaded system calls (paper §2.1–2.2).
//! * [`fault`] — seeded, declarative fault injection for the PCIe and
//!   backing path ([`fault::FaultPlan`] → [`fault::FaultInjector`]),
//!   used by the kernel's recovery machinery and test harness.
//! * [`tier`] — the backing-tier hierarchy model ([`tier::TierConfig`]):
//!   ordered HBM/DRAM/NVM/CXL-style tiers with per-tier capacity,
//!   latency, and bandwidth, plus the map-count demotion ranking.
//! * [`numa`] — the NUMA topology model ([`numa::NumaConfig`]): multiple
//!   DRAM nodes with per-node frame budgets and asymmetric link
//!   latencies, driving the kernel's home-node placement, page-table
//!   replication, and migration machinery.
//! * [`resource`] — virtual-time reservation resources (`start =
//!   max(now, free); free = start + service`) used to model queueing on
//!   shared hardware (the DMA engine) and software (page-table locks).
//! * [`clock`] — per-core virtual cycle clocks with an interrupt-debt
//!   mechanism for cross-core charges.
//! * [`hash`] — the seed-free `FxHash` hasher the kernel hot path uses
//!   for its block/page/frame-keyed maps (deterministic, and an order
//!   of magnitude cheaper than SipHash on integer keys).
//!
//! Everything is deterministic: no wall-clock time, no global state, and
//! all randomness lives in the workload crates behind explicit seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod cost;
pub mod dma;
pub mod fault;
pub mod hash;
pub mod ikc;
pub mod numa;
pub mod resource;
pub mod ring;
pub mod tier;
pub mod tlb;
pub mod types;

pub use clock::{CoreClock, Cycles};
pub use cost::CostModel;
pub use dma::{CheckedTransfer, DmaModel};
pub use fault::{FaultInjector, FaultPlan, FaultRule, FaultSite};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ikc::{IkcChannel, IkcMessage};
pub use numa::{NodeSpec, NumaConfig, MAX_NODES};
pub use resource::VirtualResource;
pub use ring::RingModel;
pub use tier::{TierConfig, TierSpec, MAX_TIERS};
pub use tlb::{Tlb, TlbConfig, TlbLookup, TlbStats};
pub use types::{CoreId, CoreSet, PageSize, PhysFrame, VirtAddr, VirtPage, MAX_CORES};
