//! Virtual-time reservation resources.
//!
//! Shared, serialized hardware and software resources — the PCIe DMA
//! engine, the address-space-wide page-table lock of regular page tables,
//! the per-core locks of PSPT — are modeled as *reservation clocks*:
//!
//! ```text
//! start = max(now, free);   free' = start + service;   caller waits start+service - now
//! ```
//!
//! A core that arrives while the resource is busy observes queueing delay;
//! a core that arrives when it is idle pays only the service time. This is
//! the standard analytic treatment of a FIFO server and is what produces
//! the paper's two headline serialization effects: regular page tables
//! collapsing past ~24 cores (every fault funnels through one lock) and
//! 2 MB pages losing under memory pressure (the DMA engine saturates).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::Cycles;

/// A serialized resource with a virtual-time reservation clock.
///
/// Thread-safe: reservations from the parallel engine race on a single
/// compare-exchange loop, which keeps the *total* occupancy exact even
/// when the arrival order is nondeterministic.
#[derive(Debug, Default)]
pub struct VirtualResource {
    free_at: AtomicU64,
    /// Total service cycles ever reserved (occupancy accounting).
    busy: AtomicU64,
    /// Total queueing delay observed by callers.
    queued: AtomicU64,
}

/// Outcome of a reservation: when service started and ended, and how much
/// of the caller's wait was queueing behind earlier reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Virtual time service began.
    pub start: Cycles,
    /// Virtual time service completed; the caller's clock should advance
    /// to this point.
    pub end: Cycles,
    /// `start - now`: time spent waiting behind earlier users.
    pub queue_delay: Cycles,
}

impl VirtualResource {
    /// An idle resource.
    pub fn new() -> VirtualResource {
        VirtualResource::default()
    }

    /// Reserves `service` cycles of exclusive use starting no earlier than
    /// `now`. Returns when service starts/ends; the caller is expected to
    /// advance its own clock by `end - now`.
    pub fn acquire(&self, now: Cycles, service: Cycles) -> Reservation {
        let mut cur = self.free_at.load(Ordering::Relaxed);
        loop {
            let start = cur.max(now);
            let end = start + service;
            match self
                .free_at
                .compare_exchange_weak(cur, end, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.busy.fetch_add(service, Ordering::Relaxed);
                    let queue_delay = start - now;
                    if queue_delay > 0 {
                        // Skip the RMW for the common uncontended grab —
                        // adding zero is a no-op, but the locked add is
                        // not free on the fault hot path.
                        self.queued.fetch_add(queue_delay, Ordering::Relaxed);
                    }
                    return Reservation {
                        start,
                        end,
                        queue_delay,
                    };
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Like [`VirtualResource::acquire`], but caps the queueing delay at
    /// `max_queue` cycles.
    ///
    /// Physically, a resource's genuine queue depth is bounded by the
    /// number of clients that can have requests outstanding (each
    /// simulated core blocks on its own fault), so any delay beyond
    /// `clients × service` is an artifact of out-of-order arrivals — the
    /// parallel engine lets core clocks skew within a window, and a
    /// latecomer must not be charged for reservations made "in its
    /// future". Callers pass a cap comfortably above the genuine bound so
    /// the deterministic engine is unaffected.
    pub fn acquire_bounded(&self, now: Cycles, service: Cycles, max_queue: Cycles) -> Reservation {
        let r = self.acquire(now, service);
        if r.queue_delay <= max_queue {
            return r;
        }
        // Clamp: serve at now + max_queue (the resource books the excess
        // twice, a deliberate approximation in the skewed case).
        let start = now + max_queue;
        Reservation {
            start,
            end: start + service,
            queue_delay: max_queue,
        }
    }

    /// Virtual time at which the resource next becomes idle.
    #[inline]
    pub fn free_at(&self) -> Cycles {
        self.free_at.load(Ordering::Relaxed)
    }

    /// Total cycles of service ever reserved.
    #[inline]
    pub fn total_busy(&self) -> Cycles {
        self.busy.load(Ordering::Relaxed)
    }

    /// Total queueing delay ever imposed on callers. The ratio
    /// `total_queued / total_busy` is a direct saturation signal used by
    /// the experiment reports.
    #[inline]
    pub fn total_queued(&self) -> Cycles {
        self.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let r = VirtualResource::new();
        let res = r.acquire(1000, 50);
        assert_eq!(
            res,
            Reservation {
                start: 1000,
                end: 1050,
                queue_delay: 0
            }
        );
        assert_eq!(r.free_at(), 1050);
    }

    #[test]
    fn busy_resource_queues() {
        let r = VirtualResource::new();
        r.acquire(0, 100);
        let res = r.acquire(30, 10);
        assert_eq!(res.start, 100);
        assert_eq!(res.end, 110);
        assert_eq!(res.queue_delay, 70);
        assert_eq!(r.total_queued(), 70);
        assert_eq!(r.total_busy(), 110);
    }

    #[test]
    fn late_arrival_after_idle_gap_does_not_queue() {
        let r = VirtualResource::new();
        r.acquire(0, 100);
        let res = r.acquire(500, 10);
        assert_eq!(res.start, 500);
        assert_eq!(res.queue_delay, 0);
    }

    #[test]
    fn occupancy_is_exact_under_concurrency() {
        use std::sync::Arc;
        let r = Arc::new(VirtualResource::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        r.acquire(i * 1000 + k, 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.total_busy(), 8 * 1000 * 7);
        // All 8000 reservations must fit back-to-back at minimum.
        assert!(r.free_at() >= 8 * 1000 * 7);
    }

    #[test]
    fn bounded_acquire_clamps_only_excess() {
        let r = VirtualResource::new();
        r.acquire(0, 1000);
        // Genuine small queue: below the cap, unchanged.
        let a = r.acquire_bounded(500, 10, 5000);
        assert_eq!(a.start, 1000);
        assert_eq!(a.queue_delay, 500);
        // Pathological skew: delay capped.
        r.acquire(0, 1_000_000);
        let b = r.acquire_bounded(100, 10, 2000);
        assert_eq!(b.queue_delay, 2000);
        assert_eq!(b.start, 2100);
    }

    #[test]
    fn reservations_never_overlap() {
        // Sequential sanity: ends are monotone and starts respect the
        // previous end.
        let r = VirtualResource::new();
        let mut prev_end = 0;
        for now in [0u64, 10, 5, 200, 190, 191] {
            let res = r.acquire(now, 13);
            assert!(res.start >= prev_end.min(res.start));
            assert!(res.start >= now);
            assert_eq!(res.end, res.start + 13);
            assert!(res.end > prev_end || prev_end == 0);
            prev_end = res.end;
        }
    }
}
