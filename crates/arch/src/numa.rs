//! NUMA topology model: multiple DRAM nodes behind one many-core mesh,
//! each with its own frame budget and an asymmetric link latency to the
//! rest of the machine.
//!
//! The paper's single co-processor is the degenerate case:
//! [`NumaConfig::single`] is one zero-cost node and every run configured
//! with it is bit-identical to the pre-NUMA kernel. With more than one
//! node, the kernel gives every resident block a *home node*, charges
//! the inter-node link on remote accesses, keeps per-node page-table
//! replicas coherent (Mitosis / numaPTE style — PSPT's exact mapping
//! sets make the replica set precise instead of broadcast), and migrates
//! a block's home when its CMCP map-count-weighted access center moves.
//!
//! Node topologies have a compact spec grammar for the CLI (`--numa`),
//! mirroring the `--tiers` grammar:
//!
//! ```text
//! spec     := preset | node (";" node)*
//! node     := name ":" capacity "@" latency "/" bandwidth
//! preset   := "1node" | "2node" | "4node"
//! ```
//!
//! where `capacity` is the node's DRAM share in 4 kB pages (the kernel
//! splits the device block budget across nodes proportionally to these
//! weights), `latency` is the node's link latency in core cycles — a
//! cross-node access from node *i* to node *j* costs
//! `latency[i] + latency[j]` — and `bandwidth` is in bytes per
//! kilocycle (`0` = no bandwidth term on page migrations). `parse` and
//! `Display` round-trip exactly.
//!
//! ## The epoch-window contract
//!
//! The deterministic engine's epoch window is the minimum latency at
//! which one core can observe another core's actions
//! (`CostModel::min_cross_core_latency`, DESIGN.md §12/§15). Inter-node
//! links add a *new* cross-core interaction channel, so the window must
//! be the global minimum over the IPI path **and** every node pair.
//! Rather than silently shrinking the window, [`NumaConfig::check_window`]
//! rejects any spec whose fastest cross-node link undercuts the IPI
//! window — loudly, at configuration-validation time.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;

/// Upper bound on the number of NUMA nodes, matching [`crate::MAX_TIERS`]:
/// eight sockets covers every topology in the replication literature.
pub const MAX_NODES: usize = 8;

/// One NUMA node's parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable node name (`n0`, `socket1`, ...). Must be
    /// non-empty and use only `[A-Za-z0-9_-]` so the spec grammar stays
    /// parseable.
    pub name: String,
    /// DRAM share weight in 4 kB pages. The kernel splits its device
    /// block budget across nodes proportionally to these weights
    /// ([`NumaConfig::split_blocks`]); must be non-zero on every node of
    /// a multi-node topology.
    pub capacity_pages: u64,
    /// Link latency in core cycles: the cost of reaching this node from
    /// the interconnect. A cross-node access `i → j` is charged
    /// `latency[i] + latency[j]`.
    pub link_latency: Cycles,
    /// Link streaming bandwidth in bytes per kilocycle (the unit of
    /// `CostModel::dma_bytes_per_kcycle`); `0` disables the
    /// size-proportional term on migrations.
    pub bytes_per_kcycle: u64,
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}@{}/{}",
            self.name, self.capacity_pages, self.link_latency, self.bytes_per_kcycle
        )
    }
}

/// A NUMA topology: the machine's nodes plus the replication switch.
/// The default is [`NumaConfig::single`] — the paper's one-node machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumaConfig {
    /// The nodes. Never empty; cores are partitioned over nodes
    /// contiguously ([`NumaConfig::node_of_core`]).
    pub nodes: Vec<NodeSpec>,
    /// Whether every node keeps a local page-table replica (Mitosis
    /// mode). `true` (the default): a node's first mapping core pays one
    /// replica sync, after which its accesses walk locally; evictions
    /// invalidate exactly the replica-holding nodes (PSPT's mapping sets
    /// make that precise). `false`: no replicas — every fault from a
    /// non-home node pays the cross-node walk on the home node's tables.
    /// Not part of the spec grammar; toggled by the CLI flag
    /// `--numa-no-replication` / `SimulationBuilder::numa_replication`.
    pub replicate: bool,
}

impl Default for NumaConfig {
    fn default() -> NumaConfig {
        NumaConfig::single()
    }
}

impl NumaConfig {
    /// The degenerate single-node machine: unbounded, zero link cost.
    /// Runs configured with it are bit-identical to the pre-NUMA kernel.
    pub fn single() -> NumaConfig {
        NumaConfig {
            nodes: vec![NodeSpec {
                name: "local".to_string(),
                capacity_pages: 0,
                link_latency: 0,
                bytes_per_kcycle: 0,
            }],
            replicate: true,
        }
    }

    /// `true` for the one-node machine — the kernel takes the legacy
    /// NUMA-free code path for it (no home nodes, no replicas, no new
    /// events), which is what keeps single-node runs byte-identical.
    pub fn is_single(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A `NumaConfig` is never empty ([`NumaConfig::validate`] rejects
    /// it); provided for clippy's `len_without_is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Parses a spec string (grammar in the module docs) or one of the
    /// presets `1node`, `2node`, `4node`.
    pub fn parse(spec: &str) -> Result<NumaConfig, String> {
        let spec = spec.trim();
        match spec {
            "1node" => return Ok(NumaConfig::single()),
            "2node" => return NumaConfig::parse("n0:262144@1600/4000;n1:262144@1600/4000"),
            "4node" => {
                return NumaConfig::parse(
                    "n0:262144@1600/4000;n1:262144@1600/4000;\
                     n2:262144@1600/4000;n3:262144@1600/4000",
                )
            }
            _ => {}
        }
        let mut nodes = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            let (name, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("node `{part}`: expected name:capacity@latency/bw"))?;
            let (cap, rest) = rest
                .split_once('@')
                .ok_or_else(|| format!("node `{part}`: missing `@latency`"))?;
            let (lat, bw) = rest
                .split_once('/')
                .ok_or_else(|| format!("node `{part}`: missing `/bandwidth`"))?;
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(format!(
                    "node name `{name}` must be non-empty [A-Za-z0-9_-]"
                ));
            }
            let num = |label: &str, s: &str| -> Result<u64, String> {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("node `{name}`: bad {label} `{s}`"))
            };
            nodes.push(NodeSpec {
                name: name.to_string(),
                capacity_pages: num("capacity", cap)?,
                link_latency: num("latency", lat)?,
                bytes_per_kcycle: num("bandwidth", bw)?,
            });
        }
        let cfg = NumaConfig {
            nodes,
            replicate: true,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the structural invariants the kernel's NUMA books rely on:
    /// 1..=[`MAX_NODES`] nodes, unique names, and — on multi-node
    /// topologies — a non-zero capacity weight per node whose byte total
    /// does not overflow `u64`.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("numa config must name at least one node".to_string());
        }
        if self.nodes.len() > MAX_NODES {
            return Err(format!(
                "{} nodes exceeds the supported maximum of {MAX_NODES}",
                self.nodes.len()
            ));
        }
        let mut total_bytes: u64 = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.name.is_empty() {
                return Err(format!("node {i} has an empty name"));
            }
            if self.nodes[..i].iter().any(|o| o.name == n.name) {
                return Err(format!("duplicate node name `{}`", n.name));
            }
            if !self.is_single() {
                if n.capacity_pages == 0 {
                    return Err(format!(
                        "node `{}` has zero capacity; every node of a multi-node \
                         topology needs a DRAM share",
                        n.name
                    ));
                }
                // The byte total is what sizings downstream divide by;
                // an overflowing spec must die here, not wrap there.
                let bytes = n
                    .capacity_pages
                    .checked_mul(4096)
                    .ok_or_else(|| format!("node `{}`: capacity overflows u64 bytes", n.name))?;
                total_bytes = total_bytes.checked_add(bytes).ok_or_else(|| {
                    format!("total capacity overflows u64 bytes at node `{}`", n.name)
                })?;
            }
        }
        Ok(())
    }

    /// Rejects topologies whose fastest cross-node link undercuts the
    /// epoch window (`ipi_window = ipi_send + ipi_handle`). The engine
    /// derives its determinism window once at build; a faster link would
    /// silently shrink it, so the mismatch must fail loudly here
    /// (module docs, DESIGN.md §15).
    pub fn check_window(&self, ipi_window: Cycles) -> Result<(), String> {
        if let Some(min) = self.min_cross_latency() {
            if min < ipi_window {
                return Err(format!(
                    "fastest cross-node link ({min} cycles) undercuts the \
                     IPI epoch window ({ipi_window} cycles); raise the node \
                     link latencies — the deterministic engine's window must \
                     be the global minimum cross-core latency (DESIGN.md §15)"
                ));
            }
        }
        Ok(())
    }

    /// The link cost of node `from` touching node `to`: zero locally,
    /// `latency[from] + latency[to]` across nodes.
    pub fn cross_latency(&self, from: usize, to: usize) -> Cycles {
        if from == to {
            0
        } else {
            self.nodes[from].link_latency + self.nodes[to].link_latency
        }
    }

    /// The fastest cross-node interaction on this topology — the sum of
    /// the two smallest link latencies. `None` on the single-node
    /// machine (there is no cross-node channel).
    pub fn min_cross_latency(&self) -> Option<Cycles> {
        if self.is_single() {
            return None;
        }
        let (mut a, mut b) = (Cycles::MAX, Cycles::MAX);
        for n in &self.nodes {
            if n.link_latency < a {
                b = a;
                a = n.link_latency;
            } else if n.link_latency < b {
                b = n.link_latency;
            }
        }
        Some(a + b)
    }

    /// Cycles to move `bytes` from node `from` to node `to` (page
    /// migration): the cross link latency plus the destination link's
    /// bandwidth term (mirrors `TierSpec::penalty` — a zero bandwidth
    /// divides into nothing, not a panic).
    pub fn xfer_penalty(&self, from: usize, to: usize, bytes: u64) -> Cycles {
        let bw = (bytes * 1024)
            .checked_div(self.nodes[to].bytes_per_kcycle)
            .unwrap_or(0);
        self.cross_latency(from, to) + bw
    }

    /// Which node a core lives on: cores are partitioned contiguously —
    /// core `c` of `cores` lands on node `c * len / cores`. A pure
    /// function of the configuration, so identical runs place cores
    /// identically at any thread count.
    pub fn node_of_core(&self, core: usize, cores: usize) -> usize {
        if self.is_single() || cores == 0 {
            return 0;
        }
        (core.min(cores - 1) * self.nodes.len()) / cores
    }

    /// Splits a device block budget across the nodes proportionally to
    /// their capacity weights: largest-remainder apportionment, ties to
    /// the lower index, and every node gets at least one block when the
    /// budget allows. Deterministic, and exact: the parts always sum to
    /// `blocks`.
    pub fn split_blocks(&self, blocks: usize) -> Vec<usize> {
        let n = self.nodes.len();
        if n == 1 {
            return vec![blocks];
        }
        let total_w: u128 = self.nodes.iter().map(|s| s.capacity_pages as u128).sum();
        debug_assert!(total_w > 0, "validate() rejects zero-weight nodes");
        let mut parts: Vec<usize> = Vec::with_capacity(n);
        let mut rems: Vec<(u128, usize)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for (i, s) in self.nodes.iter().enumerate() {
            let exact = blocks as u128 * s.capacity_pages as u128;
            let base = (exact / total_w) as usize;
            parts.push(base);
            assigned += base;
            rems.push((exact % total_w, i));
        }
        // Hand the leftover blocks to the largest remainders (ties to
        // the lower node index).
        rems.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        for k in 0..blocks - assigned {
            parts[rems[k % n].1] += 1;
        }
        // Every node must be able to home at least one block, or
        // first-touch allocation on its cores would always spill.
        for i in 0..n {
            while parts[i] == 0 && blocks >= n {
                let donor = (0..n).max_by_key(|&j| parts[j]).expect("n nodes");
                if parts[donor] <= 1 {
                    break;
                }
                parts[donor] -= 1;
                parts[i] += 1;
            }
        }
        debug_assert_eq!(parts.iter().sum::<usize>(), blocks);
        parts
    }
}

impl fmt::Display for NumaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_default_and_zero_cost() {
        let cfg = NumaConfig::default();
        assert!(cfg.is_single());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.min_cross_latency(), None);
        assert_eq!(cfg.cross_latency(0, 0), 0);
        cfg.validate().unwrap();
        cfg.check_window(2100).unwrap();
    }

    #[test]
    fn parse_display_round_trips() {
        for spec in [
            "local:0@0/0",
            "n0:262144@1600/4000;n1:262144@1600/4000",
            "a:1@1200/0;b-2:99@2400/700;C_3:5@1600/1",
        ] {
            let cfg = NumaConfig::parse(spec).unwrap();
            assert_eq!(cfg.to_string(), spec);
            assert_eq!(NumaConfig::parse(&cfg.to_string()).unwrap(), cfg);
            assert!(cfg.replicate, "parse defaults to replication on");
        }
    }

    #[test]
    fn presets_resolve_and_validate() {
        assert!(NumaConfig::parse("1node").unwrap().is_single());
        assert_eq!(NumaConfig::parse("2node").unwrap().len(), 2);
        let four = NumaConfig::parse("4node").unwrap();
        assert_eq!(four.len(), 4);
        four.validate().unwrap();
        assert!(!four.is_single());
        // The presets must clear the default IPI window.
        four.check_window(700 + 1400).unwrap();
    }

    #[test]
    fn bad_specs_are_rejected_loudly() {
        for (spec, needle) in [
            ("", "name:capacity"),
            ("n0:16@50", "bandwidth"),
            ("n0:16", "@latency"),
            ("n!0:16@50/100", "name"),
            ("n0:x@50/100", "capacity"),
            ("a:1@0/0;a:1@0/0", "duplicate"),
            ("a:1@1200/0;b:0@1200/0", "zero capacity"),
            ("a:9223372036854775807@1200/0;b:1@1200/0", "overflows u64"),
            (
                "a:1@0/0;b:1@0/0;c:1@0/0;d:1@0/0;e:1@0/0;f:1@0/0;g:1@0/0;h:1@0/0;i:1@0/0",
                "maximum",
            ),
        ] {
            let err = NumaConfig::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec `{spec}`: {err}");
        }
    }

    #[test]
    fn window_check_rejects_fast_links() {
        let cfg = NumaConfig::parse("a:1@100/0;b:1@100/0").unwrap();
        let err = cfg.check_window(2100).unwrap_err();
        assert!(err.contains("undercuts"), "{err}");
        cfg.check_window(200).unwrap();
    }

    #[test]
    fn min_cross_latency_is_the_two_smallest_links() {
        let cfg = NumaConfig::parse("a:1@3000/0;b:1@1100/0;c:1@1200/0").unwrap();
        assert_eq!(cfg.min_cross_latency(), Some(1100 + 1200));
        assert_eq!(cfg.cross_latency(0, 2), 3000 + 1200);
        assert_eq!(cfg.cross_latency(1, 1), 0);
    }

    #[test]
    fn xfer_penalty_handles_zero_bandwidth() {
        let cfg = NumaConfig::parse("a:1@1600/0;b:1@1600/4000").unwrap();
        // Destination a has zero bandwidth: latency term only.
        assert_eq!(cfg.xfer_penalty(1, 0, 1 << 21), 3200);
        // Destination b: latency plus the streaming term.
        assert_eq!(cfg.xfer_penalty(0, 1, 4096), 3200 + 4096 * 1024 / 4000);
        assert_eq!(cfg.xfer_penalty(0, 0, 4096), 0);
    }

    #[test]
    fn cores_partition_contiguously() {
        let cfg = NumaConfig::parse("2node").unwrap();
        let nodes: Vec<usize> = (0..8).map(|c| cfg.node_of_core(c, 8)).collect();
        assert_eq!(nodes, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let four = NumaConfig::parse("4node").unwrap();
        let nodes: Vec<usize> = (0..8).map(|c| four.node_of_core(c, 8)).collect();
        assert_eq!(nodes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // More nodes than cores: the tail nodes just get no cores.
        assert_eq!(four.node_of_core(0, 2), 0);
        assert_eq!(four.node_of_core(1, 2), 2);
    }

    #[test]
    fn split_blocks_is_exact_and_weighted() {
        let cfg = NumaConfig::parse("a:100@1600/0;b:300@1600/0").unwrap();
        assert_eq!(cfg.split_blocks(100), vec![25, 75]);
        let odd = cfg.split_blocks(103);
        assert_eq!(odd.iter().sum::<usize>(), 103);
        assert!(odd[1] > odd[0]);
        // Tiny budgets: everyone still gets one block when possible.
        let four = NumaConfig::parse("4node").unwrap();
        assert_eq!(four.split_blocks(5).iter().sum::<usize>(), 5);
        assert!(four.split_blocks(5).iter().all(|&p| p >= 1));
        assert_eq!(NumaConfig::single().split_blocks(7), vec![7]);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = NumaConfig::parse("2node").unwrap();
        let v = serde::Serialize::to_value(&cfg);
        let back: NumaConfig = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, cfg);
    }
}
