//! Per-core two-level data TLB model.
//!
//! Geometry follows the Knights Corner data TLB: separate L1 entry arrays
//! per page size (64 × 4 kB, 32 × 64 kB, 8 × 2 MB) backed by a unified
//! 64-entry L2. Like the hardware, a lookup probes all size classes —
//! the effective page size of a mapping is a property of the PTE, not of
//! the access.
//!
//! The `misses` counter is the "dTLB misses" column of the paper's
//! Table 1: every miss triggers a hardware page-table walk, and on KNC's
//! in-order cores the thread stalls for the entire walk.

use crate::clock::Cycles;
use crate::types::{PageSize, VirtPage};

/// Geometry of one core's TLB hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// (entries, associativity) of the L1 4 kB array.
    pub l1_4k: (usize, usize),
    /// (entries, associativity) of the L1 64 kB array.
    pub l1_64k: (usize, usize),
    /// (entries, associativity) of the L1 2 MB array.
    pub l1_2m: (usize, usize),
    /// (entries, associativity) of the unified L2.
    pub l2: (usize, usize),
}

impl Default for TlbConfig {
    /// Knights Corner data-TLB geometry.
    fn default() -> TlbConfig {
        TlbConfig {
            l1_4k: (64, 4),
            l1_64k: (32, 4),
            l1_2m: (8, 8),
            l2: (64, 4),
        }
    }
}

/// Where a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// Hit in the L1 array of the mapping's size class.
    L1,
    /// Missed L1, hit the unified L2 (entry is promoted back to L1).
    L2,
    /// Full miss: the hardware must walk the page tables.
    Miss,
}

/// Hit/miss counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translated accesses.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Full misses (page walks) — Table 1's "dTLB misses".
    pub misses: u64,
    /// Entries removed by (local or remote) invalidations.
    pub invalidations: u64,
    /// Full flushes.
    pub flushes: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Page number in units of the array's size class.
    tag: u64,
    stamp: u64,
}

#[derive(Debug)]
struct SetAssocArray {
    sets: usize,
    ways: usize,
    /// Bits of the tag to drop before set indexing. The unified L2 keys
    /// entries by `(vpn << 2) | class` for uniqueness but indexes sets by
    /// the vpn alone, so class bits don't shrink its effective capacity.
    index_shift: u32,
    /// `sets × ways` slots, row-major by set.
    slots: Vec<Option<Entry>>,
}

impl SetAssocArray {
    fn new((entries, ways): (usize, usize), index_shift: u32) -> SetAssocArray {
        assert!(
            entries > 0 && ways > 0 && entries % ways == 0,
            "bad TLB geometry"
        );
        let sets = entries / ways;
        SetAssocArray {
            sets,
            ways,
            index_shift,
            slots: vec![None; entries],
        }
    }

    #[inline]
    fn set_range(&self, tag: u64) -> std::ops::Range<usize> {
        let set = ((tag >> self.index_shift) as usize) % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    /// Finds `tag`, refreshing its LRU stamp.
    fn lookup(&mut self, tag: u64, stamp: u64) -> bool {
        let range = self.set_range(tag);
        for e in self.slots[range].iter_mut().flatten() {
            if e.tag == tag {
                e.stamp = stamp;
                return true;
            }
        }
        false
    }

    /// Inserts `tag`, evicting the LRU way of its set if full. Returns the
    /// evicted tag, if any.
    fn insert(&mut self, tag: u64, stamp: u64) -> Option<u64> {
        let range = self.set_range(tag);
        // Already present: refresh.
        for e in self.slots[range.clone()].iter_mut().flatten() {
            if e.tag == tag {
                e.stamp = stamp;
                return None;
            }
        }
        // Free way?
        for slot in &mut self.slots[range.clone()] {
            if slot.is_none() {
                *slot = Some(Entry { tag, stamp });
                return None;
            }
        }
        // Evict LRU way.
        let victim_idx = range
            .clone()
            .min_by_key(|&i| self.slots[i].as_ref().map(|e| e.stamp).unwrap_or(0))
            .expect("non-empty set");
        let old = self.slots[victim_idx].replace(Entry { tag, stamp });
        old.map(|e| e.tag)
    }

    /// Removes `tag` if present; returns whether it was.
    fn invalidate(&mut self, tag: u64) -> bool {
        let range = self.set_range(tag);
        for slot in &mut self.slots[range] {
            if slot.map(|e| e.tag) == Some(tag) {
                *slot = None;
                return true;
            }
        }
        false
    }

    fn clear(&mut self) -> usize {
        let n = self.slots.iter().filter(|s| s.is_some()).count();
        self.slots.iter_mut().for_each(|s| *s = None);
        n
    }

    fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// One core's data TLB.
///
/// Owned exclusively by the simulated core (no interior locking): remote
/// shootdowns are *charged* by the ring model and *applied* by the owning
/// core when it processes the invalidation, mirroring how an IPI handler
/// runs on the target core itself.
#[derive(Debug)]
pub struct Tlb {
    l1_4k: SetAssocArray,
    l1_64k: SetAssocArray,
    l1_2m: SetAssocArray,
    /// Unified second level. Tags are (vpn_in_class << 2) | class so that
    /// identical numeric pages of different sizes never alias.
    l2: SetAssocArray,
    stamp: u64,
    stats: TlbStats,
    /// Extra cycles of translation cost accumulated since last drain
    /// (L2-hit and walk penalties); the engine drains this into the core
    /// clock.
    pending_cycles: Cycles,
    l2_hit_cost: Cycles,
    walk_cost: Cycles,
}

impl Tlb {
    /// Builds a TLB with `config` geometry and the given penalty costs.
    pub fn new(config: TlbConfig, l2_hit_cost: Cycles, walk_cost: Cycles) -> Tlb {
        Tlb {
            l1_4k: SetAssocArray::new(config.l1_4k, 0),
            l1_64k: SetAssocArray::new(config.l1_64k, 0),
            l1_2m: SetAssocArray::new(config.l1_2m, 0),
            l2: SetAssocArray::new(config.l2, 2),
            stamp: 0,
            stats: TlbStats::default(),
            pending_cycles: 0,
            l2_hit_cost,
            walk_cost,
        }
    }

    /// KNC-geometry TLB with penalties from `cost`.
    pub fn knc(cost: &crate::cost::CostModel) -> Tlb {
        Tlb::new(TlbConfig::default(), cost.tlb_l2_hit, cost.page_walk)
    }

    #[inline]
    fn class_tag(page: VirtPage, size: PageSize) -> u64 {
        let vpn = page.0 >> (size.shift() - 12);
        (vpn << 2)
            | match size {
                PageSize::K4 => 0,
                PageSize::K64 => 1,
                PageSize::M2 => 2,
            }
    }

    #[inline]
    fn l1_for(&mut self, size: PageSize) -> &mut SetAssocArray {
        match size {
            PageSize::K4 => &mut self.l1_4k,
            PageSize::K64 => &mut self.l1_64k,
            PageSize::M2 => &mut self.l1_2m,
        }
    }

    /// Translates an access to the 4 kB page `page`, which the page tables
    /// map with a `size`-sized entry. Returns where the translation hit.
    ///
    /// On a full miss the caller is expected to walk the page tables and,
    /// if a valid translation exists, call [`Tlb::fill`].
    pub fn access(&mut self, page: VirtPage, size: PageSize) -> TlbLookup {
        self.stamp += 1;
        self.stats.accesses += 1;
        let vpn_in_class = page.0 >> (size.shift() - 12);
        let stamp = self.stamp;
        if self.l1_for(size).lookup(vpn_in_class, stamp) {
            self.stats.l1_hits += 1;
            return TlbLookup::L1;
        }
        let tag = Self::class_tag(page, size);
        if self.l2.lookup(tag, stamp) {
            self.stats.l2_hits += 1;
            self.pending_cycles += self.l2_hit_cost;
            // Promote back into L1.
            self.l1_for(size).insert(vpn_in_class, stamp);
            return TlbLookup::L2;
        }
        self.stats.misses += 1;
        self.pending_cycles += self.walk_cost;
        TlbLookup::Miss
    }

    /// Translates an access to the 4 kB page `page` when the mapping's
    /// size class is not known in advance (the adaptive-page-size mode,
    /// where the kernel mixes sizes online). Probes every size class —
    /// which is what the hardware does anyway: all L1 arrays are
    /// searched in parallel and the entry's class is a PTE property.
    /// Counts exactly one access; a hit in any class's L1 is an L1 hit,
    /// a hit under any class tag in the unified L2 promotes back into
    /// that class's L1.
    pub fn access_any(&mut self, page: VirtPage) -> TlbLookup {
        self.stamp += 1;
        self.stats.accesses += 1;
        let stamp = self.stamp;
        for size in PageSize::ALL {
            let vpn_in_class = page.0 >> (size.shift() - 12);
            if self.l1_for(size).lookup(vpn_in_class, stamp) {
                self.stats.l1_hits += 1;
                return TlbLookup::L1;
            }
        }
        for size in PageSize::ALL {
            if self.l2.lookup(Self::class_tag(page, size), stamp) {
                self.stats.l2_hits += 1;
                self.pending_cycles += self.l2_hit_cost;
                let vpn_in_class = page.0 >> (size.shift() - 12);
                self.l1_for(size).insert(vpn_in_class, stamp);
                return TlbLookup::L2;
            }
        }
        self.stats.misses += 1;
        self.pending_cycles += self.walk_cost;
        TlbLookup::Miss
    }

    /// Records an additional full walk for an access whose fault had to
    /// be retried: the mapping the fault handler installed was torn down
    /// by a concurrent eviction before this walk could re-read it, so
    /// the instruction walks — and misses — again. Counts a miss and the
    /// walk penalty but not a new access (the touch itself is retired
    /// once), keeping both `faults <= misses` and access conservation
    /// exact under the parallel engine.
    pub fn rewalk(&mut self) {
        self.stats.misses += 1;
        self.pending_cycles += self.walk_cost;
    }

    /// Installs a translation after a successful page walk.
    pub fn fill(&mut self, page: VirtPage, size: PageSize) {
        self.stamp += 1;
        let vpn_in_class = page.0 >> (size.shift() - 12);
        let stamp = self.stamp;
        self.l1_for(size).insert(vpn_in_class, stamp);
        self.l2.insert(Self::class_tag(page, size), stamp);
    }

    /// `INVLPG`: drops any cached translation covering the 4 kB page
    /// `page`, at every size class. Returns whether anything was dropped.
    pub fn invalidate(&mut self, page: VirtPage) -> bool {
        let mut any = false;
        for size in PageSize::ALL {
            let vpn_in_class = page.0 >> (size.shift() - 12);
            any |= self.l1_for(size).invalidate(vpn_in_class);
            any |= self.l2.invalidate(Self::class_tag(page, size));
        }
        if any {
            self.stats.invalidations += 1;
        }
        any
    }

    /// [`Tlb::invalidate`] that records a
    /// [`cmcp_trace::EventKind::TlbInvalidate`] event stamped with the
    /// owning core's virtual time.
    pub fn invalidate_traced<R: cmcp_trace::Recorder>(
        &mut self,
        page: VirtPage,
        tracer: &R,
        core: u16,
        now: Cycles,
    ) -> bool {
        let present = self.invalidate(page);
        if R::ENABLED {
            tracer.record(
                core,
                now,
                cmcp_trace::EventKind::TlbInvalidate,
                page.0,
                present as u64,
            );
        }
        present
    }

    /// Full flush (CR3 reload).
    pub fn flush(&mut self) {
        self.l1_4k.clear();
        self.l1_64k.clear();
        self.l1_2m.clear();
        self.l2.clear();
        self.stats.flushes += 1;
    }

    /// Hit/miss counters so far.
    #[inline]
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Drains the translation-penalty cycles accumulated since the last
    /// call; the engine adds them to the core clock.
    #[inline]
    pub fn drain_cycles(&mut self) -> Cycles {
        std::mem::take(&mut self.pending_cycles)
    }

    /// Number of valid L1 entries across all size classes (testing aid).
    pub fn l1_occupancy(&self) -> usize {
        self.l1_4k.occupancy() + self.l1_64k.occupancy() + self.l1_2m.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn tlb() -> Tlb {
        Tlb::knc(&CostModel::default())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb();
        assert_eq!(t.access(VirtPage(7), PageSize::K4), TlbLookup::Miss);
        t.fill(VirtPage(7), PageSize::K4);
        assert_eq!(t.access(VirtPage(7), PageSize::K4), TlbLookup::L1);
        let s = t.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn rewalk_counts_a_miss_but_not_an_access() {
        let mut t = tlb();
        assert_eq!(t.access(VirtPage(7), PageSize::K4), TlbLookup::Miss);
        let walk_cycles = t.drain_cycles();
        t.rewalk();
        let s = t.stats();
        assert_eq!(s.accesses, 1, "the touch retires once");
        assert_eq!(s.misses, 2, "the retried instruction walks again");
        assert_eq!(t.drain_cycles(), walk_cycles, "and pays the walk again");
    }

    #[test]
    fn large_entry_covers_all_contained_4k_pages() {
        let mut t = tlb();
        t.fill(VirtPage(0x100), PageSize::K64); // covers 0x100..0x110
        for p in 0x100..0x110u64 {
            assert_eq!(
                t.access(VirtPage(p), PageSize::K64),
                TlbLookup::L1,
                "page {p:#x}"
            );
        }
        assert_eq!(t.access(VirtPage(0x110), PageSize::K64), TlbLookup::Miss);
    }

    #[test]
    fn capacity_eviction_in_4k_array() {
        let mut t = tlb();
        // 64-entry L1 + 64-entry L2: touching 129 distinct conflicting
        // pages guarantees re-touching the first misses again.
        for p in 0..129u64 {
            t.access(VirtPage(p), PageSize::K4);
            t.fill(VirtPage(p), PageSize::K4);
        }
        let misses_before = t.stats().misses;
        assert_eq!(t.access(VirtPage(0), PageSize::K4), TlbLookup::Miss);
        assert_eq!(t.stats().misses, misses_before + 1);
    }

    #[test]
    fn l2_backs_up_l1_evictions() {
        let mut t = tlb();
        // The 2 MB L1 array has only 8 entries; touching 9 distinct 2 MB
        // pages evicts the first from L1 while the 64-entry L2 keeps it.
        for i in 0..9u64 {
            let p = VirtPage(i * 512);
            t.access(p, PageSize::M2);
            t.fill(p, PageSize::M2);
        }
        let r = t.access(VirtPage(0), PageSize::M2);
        assert_eq!(r, TlbLookup::L2);
        // ...and the hit promoted it back into L1.
        assert_eq!(t.access(VirtPage(0), PageSize::M2), TlbLookup::L1);
    }

    #[test]
    fn l2_index_ignores_class_bits() {
        // Sequential 4 kB pages must be able to use the whole L2, not just
        // every fourth set: after filling exactly l2-capacity sequential
        // pages (which also fit the 4k L1), all of them still hit.
        let mut t = tlb();
        for p in 0..64u64 {
            t.access(VirtPage(p), PageSize::K4);
            t.fill(VirtPage(p), PageSize::K4);
        }
        let before = t.stats().misses;
        for p in 0..64u64 {
            assert_ne!(
                t.access(VirtPage(p), PageSize::K4),
                TlbLookup::Miss,
                "page {p}"
            );
        }
        assert_eq!(t.stats().misses, before);
    }

    #[test]
    fn invalidate_removes_both_levels() {
        let mut t = tlb();
        t.fill(VirtPage(42), PageSize::K4);
        assert!(t.invalidate(VirtPage(42)));
        assert!(!t.invalidate(VirtPage(42)));
        assert_eq!(t.access(VirtPage(42), PageSize::K4), TlbLookup::Miss);
    }

    #[test]
    fn invalidate_4k_subpage_kills_64k_entry() {
        let mut t = tlb();
        t.fill(VirtPage(0x100), PageSize::K64);
        // INVLPG on any covered 4 kB page must drop the 64 kB entry.
        assert!(t.invalidate(VirtPage(0x105)));
        assert_eq!(t.access(VirtPage(0x100), PageSize::K64), TlbLookup::Miss);
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = tlb();
        for p in 0..10u64 {
            t.fill(VirtPage(p), PageSize::K4);
        }
        assert!(t.l1_occupancy() > 0);
        t.flush();
        assert_eq!(t.l1_occupancy(), 0);
        assert_eq!(t.access(VirtPage(3), PageSize::K4), TlbLookup::Miss);
        assert_eq!(t.stats().flushes, 1);
    }

    #[test]
    fn pending_cycles_accumulate_and_drain() {
        let cost = CostModel::default();
        let mut t = Tlb::knc(&cost);
        t.access(VirtPage(1), PageSize::K4); // miss → walk cost
        assert_eq!(t.drain_cycles(), cost.page_walk);
        assert_eq!(t.drain_cycles(), 0);
    }

    #[test]
    fn same_vpn_different_size_does_not_alias_in_l2() {
        let mut t = tlb();
        // 4kB page 0 and 2MB page 0 have the same in-class vpn (0) but
        // must be distinct L2 entries.
        t.fill(VirtPage(0), PageSize::K4);
        t.fill(VirtPage(0), PageSize::M2);
        assert!(t.invalidate(VirtPage(0)));
        assert_eq!(t.access(VirtPage(0), PageSize::K4), TlbLookup::Miss);
        assert_eq!(t.access(VirtPage(0), PageSize::M2), TlbLookup::Miss);
    }

    #[test]
    fn access_any_finds_every_size_class() {
        let mut t = tlb();
        t.fill(VirtPage(0x100), PageSize::K64); // covers 0x100..0x110
        t.fill(VirtPage(0x400), PageSize::M2); // covers 0x400..0x600
        t.fill(VirtPage(7), PageSize::K4);
        assert_eq!(t.access_any(VirtPage(0x105)), TlbLookup::L1);
        assert_eq!(t.access_any(VirtPage(0x5ff)), TlbLookup::L1);
        assert_eq!(t.access_any(VirtPage(7)), TlbLookup::L1);
        assert_eq!(t.access_any(VirtPage(0x111)), TlbLookup::Miss);
        let s = t.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.l1_hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn access_any_promotes_from_l2_into_the_right_class() {
        let mut t = tlb();
        // Push a 2 MB entry out of its 8-entry L1 but keep it in L2.
        for i in 0..9u64 {
            let p = VirtPage(i * 512);
            t.access(p, PageSize::M2);
            t.fill(p, PageSize::M2);
        }
        assert_eq!(t.access_any(VirtPage(5)), TlbLookup::L2);
        // The promotion restored a 2 MB-class L1 entry covering page 5.
        assert_eq!(t.access(VirtPage(5), PageSize::M2), TlbLookup::L1);
    }

    #[test]
    fn larger_pages_reduce_misses_on_streaming_sweep() {
        // The motivation for 64 kB pages: sweep 4 MB of address space.
        let sweep = |size: PageSize| {
            let mut t = tlb();
            let mut misses = 0;
            for p in 0..1024u64 {
                if t.access(VirtPage(p), size) == TlbLookup::Miss {
                    misses += 1;
                    t.fill(VirtPage(p), size);
                }
            }
            misses
        };
        let m4 = sweep(PageSize::K4);
        let m64 = sweep(PageSize::K64);
        let m2m = sweep(PageSize::M2);
        assert!(m4 > m64, "4k misses {m4} must exceed 64k misses {m64}");
        assert!(m64 > m2m, "64k misses {m64} must exceed 2M misses {m2m}");
        assert_eq!(m4, 1024);
        assert_eq!(m64, 64);
        assert_eq!(m2m, 2);
    }
}
