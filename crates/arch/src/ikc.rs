//! The Inter-Kernel Communication (IKC) channel.
//!
//! Paper §2.1: IHK's IKC layer "performs data transfer and signal
//! notification between the host and the manycore co-processor". The
//! lightweight kernel uses it to ship heavy system calls to the host
//! (§2.2: "heavy system calls are shipped to and executed on the host")
//! and to coordinate the backing-store transfers that the DMA engine
//! carries.
//!
//! The model is a pair of ring-buffer message queues over the PCIe link:
//! a request costs a doorbell write and a message copy in each direction
//! plus the host-side service time; concurrent requests from many cores
//! serialize on the channel, which is what makes offloaded syscalls a
//! scalability hazard the lightweight kernel avoids on its fast paths.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::clock::Cycles;
use crate::cost::CostModel;
use crate::fault::{FaultInjector, FaultSite};
use crate::resource::VirtualResource;

/// Message classes with distinct host-side service behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IkcMessage {
    /// Signal-only doorbell (no payload, no host work).
    Notify,
    /// A system call forwarded to the host: `service` cycles of host
    /// work, `payload` bytes copied each way.
    Syscall {
        /// Host-side service time in (device-clock) cycles.
        service: Cycles,
        /// Request + response payload bytes.
        payload: u64,
    },
}

/// Completion report for one IKC round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IkcCompletion {
    /// When the caller may resume (device virtual time).
    pub done_at: Cycles,
    /// Time spent queueing behind other channel users.
    pub queue_delay: Cycles,
}

/// A host↔device message channel.
#[derive(Debug)]
pub struct IkcChannel {
    /// Channel occupancy (ring slots + host handler are serialized).
    channel: VirtualResource,
    /// One-way message latency (doorbell + IPI to the host core).
    latency: Cycles,
    /// Payload copy throughput, bytes per 1024 cycles (shares the PCIe
    /// link speed with the DMA engine).
    bytes_per_kcycle: u64,
    requests: AtomicU64,
    payload_bytes: AtomicU64,
}

impl IkcChannel {
    /// A channel using the cost table's PCIe characteristics.
    pub fn new(cost: &CostModel) -> IkcChannel {
        IkcChannel {
            channel: VirtualResource::new(),
            latency: cost.dma_latency,
            bytes_per_kcycle: cost.dma_bytes_per_kcycle,
            requests: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
        }
    }

    /// Service time occupied on the channel for `msg`.
    pub fn service_time(&self, msg: IkcMessage) -> Cycles {
        match msg {
            IkcMessage::Notify => 64,
            IkcMessage::Syscall { service, payload } => {
                service + payload * 1024 / self.bytes_per_kcycle
            }
        }
    }

    /// Performs a round trip starting at device time `now`.
    pub fn round_trip(&self, now: Cycles, msg: IkcMessage) -> IkcCompletion {
        self.requests.fetch_add(1, Relaxed);
        if let IkcMessage::Syscall { payload, .. } = msg {
            self.payload_bytes.fetch_add(payload, Relaxed);
        }
        let service = self.service_time(msg);
        // Bounded like the DMA engine: a core has one offload outstanding.
        let r = self
            .channel
            .acquire_bounded(now, service, 256 * service.max(64));
        IkcCompletion {
            done_at: r.end + 2 * self.latency, // request + response hops
            queue_delay: r.queue_delay,
        }
    }

    /// One-way message latency (doorbell + IPI hop).
    pub fn latency(&self) -> Cycles {
        self.latency
    }

    /// [`IkcChannel::round_trip`] with fault injection: each injected
    /// drop loses the message, and the caller discovers it only after a
    /// resend timeout of one full unqueued round trip (service +
    /// both hops). Returns the completion of the eventually-successful
    /// trip — `done_at` already includes all timeout penalties — plus
    /// the number of drops suffered. Dropped messages never occupied
    /// the channel (they died on the wire), so only the final trip
    /// reserves it. With `inj == None` this is exactly `round_trip`.
    pub fn round_trip_checked(
        &self,
        now: Cycles,
        msg: IkcMessage,
        inj: Option<&FaultInjector>,
    ) -> (IkcCompletion, u32) {
        let mut drops = 0u32;
        let mut start = now;
        if let Some(inj) = inj {
            while inj.roll(FaultSite::Ikc) {
                drops += 1;
                start += self.service_time(msg) + 2 * self.latency;
                assert!(
                    drops < 64,
                    "64 consecutive IKC drops — fault rate beyond the clamp?"
                );
            }
        }
        let mut done = self.round_trip(start, msg);
        done.queue_delay += start - now; // timeouts are wait, not work
        (done, drops)
    }

    /// Total round trips.
    pub fn requests(&self) -> u64 {
        self.requests.load(Relaxed)
    }

    /// Total payload bytes copied.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Relaxed)
    }

    /// Total queueing delay imposed on callers.
    pub fn queued_cycles(&self) -> Cycles {
        self.channel.total_queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> IkcChannel {
        IkcChannel::new(&CostModel::default())
    }

    #[test]
    fn notify_is_cheap() {
        let c = channel();
        let done = c.round_trip(0, IkcMessage::Notify);
        assert!(
            done.done_at < 10_000,
            "a doorbell is a few microseconds: {done:?}"
        );
        assert_eq!(c.requests(), 1);
    }

    #[test]
    fn syscall_cost_scales_with_payload() {
        let c = channel();
        let small = c
            .round_trip(
                0,
                IkcMessage::Syscall {
                    service: 1_000,
                    payload: 256,
                },
            )
            .done_at;
        let big = c
            .round_trip(
                1_000_000,
                IkcMessage::Syscall {
                    service: 1_000,
                    payload: 1 << 20,
                },
            )
            .done_at
            - 1_000_000;
        assert!(
            big > 10 * small,
            "1MB payload must dwarf 256B: {small} vs {big}"
        );
        assert_eq!(c.payload_bytes(), 256 + (1 << 20));
    }

    #[test]
    fn concurrent_offloads_serialize() {
        let c = channel();
        let a = c.round_trip(
            0,
            IkcMessage::Syscall {
                service: 10_000,
                payload: 0,
            },
        );
        let b = c.round_trip(
            0,
            IkcMessage::Syscall {
                service: 10_000,
                payload: 0,
            },
        );
        assert_eq!(a.queue_delay, 0);
        assert!(b.queue_delay >= 10_000, "second request queues: {b:?}");
        assert!(c.queued_cycles() >= 10_000);
    }

    #[test]
    fn checked_round_trip_pays_timeouts_on_drops() {
        use crate::fault::{FaultInjector, FaultPlan};
        let c = channel();
        let msg = IkcMessage::Syscall {
            service: 1_000,
            payload: 256,
        };
        // No injector: identical to the plain path.
        let plain = c.round_trip(0, msg);
        let c2 = channel();
        let (checked, drops) = c2.round_trip_checked(0, msg, None);
        assert_eq!(drops, 0);
        assert_eq!(checked, plain);
        // Heavy drops: completions get pushed out by timeout penalties.
        let inj = FaultInjector::new(&FaultPlan::new(11).ikc_drops(0.5));
        let mut total_drops = 0;
        let mut penalized = 0;
        for _ in 0..64 {
            let base = channel().round_trip(0, msg).done_at;
            let (done, d) = channel().round_trip_checked(0, msg, Some(&inj));
            total_drops += d;
            if d > 0 {
                penalized += 1;
                let timeout = channel().service_time(msg) + 2 * channel().latency();
                assert_eq!(done.done_at, base + d as u64 * timeout);
                assert_eq!(done.queue_delay, d as u64 * timeout);
            }
        }
        assert!(total_drops > 10, "50% over 64 trips: {total_drops}");
        assert!(penalized > 5);
    }

    #[test]
    fn round_trip_includes_both_hops() {
        let c = channel();
        let done = c.round_trip(500, IkcMessage::Notify);
        let cost = CostModel::default();
        assert!(done.done_at >= 500 + 64 + 2 * cost.dma_latency);
    }
}
