//! The PCIe DMA engine moving pages between device RAM and host memory.
//!
//! The paper's hierarchical memory management does all data movement with
//! PCI DMA at a measured ~6 GB/s. Two properties matter for reproducing
//! the evaluation:
//!
//! 1. **Transfer time scales with page size** — a 2 MB page costs 512×
//!    the streaming time of a 4 kB page, which is why large pages lose
//!    under memory pressure (Figure 10).
//! 2. **The engine is a shared, serialized resource** — when 56 cores
//!    fault concurrently their transfers queue, so the *effective* fault
//!    latency grows with the fault rate. This is modeled with a
//!    [`VirtualResource`] reservation clock.
//!
//! [`VirtualResource`]: crate::resource::VirtualResource

use crate::clock::Cycles;
use crate::cost::CostModel;
use crate::fault::{FaultInjector, FaultSite};
use crate::resource::{Reservation, VirtualResource};
use crate::types::PageSize;

/// Direction of a transfer, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Host memory → device RAM (page-in on a fault).
    HostToDevice,
    /// Device RAM → host memory (write-back of a dirty victim).
    DeviceToHost,
}

impl DmaDirection {
    /// Stable payload encoding used by trace events (0 in, 1 out).
    #[inline]
    pub fn code(self) -> u64 {
        match self {
            DmaDirection::HostToDevice => 0,
            DmaDirection::DeviceToHost => 1,
        }
    }
}

/// Outcome of a fault-checked transfer attempt.
#[derive(Debug, Clone, Copy)]
pub struct CheckedTransfer {
    /// The engine reservation; `end` already includes any latency spike.
    pub reservation: Reservation,
    /// Extra completion-path stall injected by a latency spike (already
    /// folded into `reservation.end`; reported so callers can count it).
    pub spike_cycles: Cycles,
    /// The transfer aborted with an error after completing its wait; the
    /// data did not arrive and the caller must retry.
    pub failed: bool,
}

/// The DMA engine: a transfer-time model plus a reservation clock.
#[derive(Debug)]
pub struct DmaModel {
    latency: Cycles,
    bytes_per_kcycle: u64,
    engine: VirtualResource,
    /// Cores that can have transfers outstanding — bounds genuine queue
    /// depth (each core blocks on its fault, which issues ≤2 transfers).
    clients: u64,
    bytes_in: std::sync::atomic::AtomicU64,
    bytes_out: std::sync::atomic::AtomicU64,
}

impl DmaModel {
    /// Builds the engine from the cost table, serving `clients` cores.
    pub fn new(cost: &CostModel) -> DmaModel {
        DmaModel::with_clients(cost, 64)
    }

    /// Builds the engine with an explicit client bound.
    pub fn with_clients(cost: &CostModel, clients: usize) -> DmaModel {
        DmaModel {
            latency: cost.dma_latency,
            bytes_per_kcycle: cost.dma_bytes_per_kcycle,
            engine: VirtualResource::new(),
            clients: clients.max(1) as u64,
            bytes_in: Default::default(),
            bytes_out: Default::default(),
        }
    }

    /// Unqueued service time for `bytes`.
    #[inline]
    pub fn service_time(&self, bytes: u64) -> Cycles {
        self.latency + bytes * 1024 / self.bytes_per_kcycle
    }

    /// Reserves the engine at virtual time `now` for a transfer of one
    /// page of `size`; returns the reservation (the caller advances its
    /// clock to `end`).
    pub fn transfer_page(&self, now: Cycles, size: PageSize, dir: DmaDirection) -> Reservation {
        self.transfer(now, size.bytes(), dir)
    }

    /// Reserves the engine for an arbitrary-size transfer.
    ///
    /// The engine's *occupancy* is the streaming time only — descriptor
    /// setup and completion signalling pipeline with other transfers on
    /// the KNC's multi-channel DMA engine — while the caller additionally
    /// waits out the fixed latency. The returned reservation's `end` is
    /// the caller-visible completion time.
    pub fn transfer(&self, now: Cycles, bytes: u64, dir: DmaDirection) -> Reservation {
        use std::sync::atomic::Ordering::Relaxed;
        match dir {
            DmaDirection::HostToDevice => self.bytes_in.fetch_add(bytes, Relaxed),
            DmaDirection::DeviceToHost => self.bytes_out.fetch_add(bytes, Relaxed),
        };
        let streaming = bytes * 1024 / self.bytes_per_kcycle;
        // Each core blocks on its own fault and a fault issues at most
        // two transfers (write-back + page-in), so a genuine queue never
        // exceeds ~2 transfers per client; the 4× cap only clamps
        // parallel-engine clock-skew artifacts.
        let r = self
            .engine
            .acquire_bounded(now, streaming, 4 * self.clients * streaming.max(64));
        Reservation {
            start: r.start,
            end: r.end + self.latency,
            queue_delay: r.queue_delay,
        }
    }

    /// [`DmaModel::transfer`] that also records the enqueue as a
    /// [`cmcp_trace::EventKind::DmaEnqueue`] event on behalf of `core`.
    /// The matching `DmaComplete` is recorded by the caller, which alone
    /// knows how many cycles of the wait its clock actually absorbed.
    pub fn transfer_traced<R: cmcp_trace::Recorder>(
        &self,
        now: Cycles,
        bytes: u64,
        dir: DmaDirection,
        tracer: &R,
        core: u16,
    ) -> Reservation {
        if R::ENABLED {
            tracer.record(
                core,
                now,
                cmcp_trace::EventKind::DmaEnqueue,
                bytes,
                dir.code(),
            );
        }
        self.transfer(now, bytes, dir)
    }

    /// [`DmaModel::transfer_traced`] with fault injection. The engine is
    /// reserved (and the link carries the bytes) whether or not the
    /// attempt fails — an aborted transfer still burned its slot — and a
    /// latency spike stretches the caller-visible completion time
    /// without occupying the engine longer (the stall is in the
    /// completion path, not the streaming channel). With `inj == None`
    /// this is exactly [`DmaModel::transfer_traced`].
    pub fn transfer_checked<R: cmcp_trace::Recorder>(
        &self,
        now: Cycles,
        bytes: u64,
        dir: DmaDirection,
        inj: Option<&FaultInjector>,
        tracer: &R,
        core: u16,
    ) -> CheckedTransfer {
        self.transfer_checked_tiered(now, bytes, dir, inj, tracer, core, 0)
    }

    /// [`DmaModel::transfer_checked`] keyed by the backing tier the
    /// transfer lands in (or is served from): the DMA error and latency
    /// rolls draw from that tier's independent injection sequence, so
    /// each tier of a hierarchy can fail on its own schedule. Tier 0
    /// hashes exactly as the untiered path — flat runs are unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_checked_tiered<R: cmcp_trace::Recorder>(
        &self,
        now: Cycles,
        bytes: u64,
        dir: DmaDirection,
        inj: Option<&FaultInjector>,
        tracer: &R,
        core: u16,
        tier: usize,
    ) -> CheckedTransfer {
        let reservation = self.transfer_traced(now, bytes, dir, tracer, core);
        let mut out = CheckedTransfer {
            reservation,
            spike_cycles: 0,
            failed: false,
        };
        if let Some(inj) = inj {
            if let Some(mult) = inj.roll_param_tiered(FaultSite::DmaLatency, tier) {
                let streaming = bytes * 1024 / self.bytes_per_kcycle;
                out.spike_cycles = mult * streaming.max(1);
                out.reservation.end += out.spike_cycles;
            }
            let err_site = match dir {
                DmaDirection::HostToDevice => FaultSite::DmaIn,
                DmaDirection::DeviceToHost => FaultSite::DmaOut,
            };
            out.failed = inj.roll_tiered(err_site, tier);
        }
        out
    }

    /// Total bytes moved host → device.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total bytes moved device → host.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total cycles the engine was busy.
    pub fn busy_cycles(&self) -> Cycles {
        self.engine.total_busy()
    }

    /// Total queueing delay imposed on faulting cores — the saturation
    /// signal behind Figure 10's page-size crossovers.
    pub fn queued_cycles(&self) -> Cycles {
        self.engine.total_queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_size() {
        let d = DmaModel::new(&CostModel::default());
        let t4 = d.service_time(PageSize::K4.bytes());
        let t2m = d.service_time(PageSize::M2.bytes());
        assert!(t2m > 100 * t4, "2MB must cost vastly more than 4kB");
        assert!(t4 > 0);
    }

    #[test]
    fn concurrent_transfers_queue_on_streaming_time_only() {
        let d = DmaModel::new(&CostModel::default());
        let a = d.transfer_page(0, PageSize::K4, DmaDirection::HostToDevice);
        let b = d.transfer_page(0, PageSize::K4, DmaDirection::HostToDevice);
        assert_eq!(a.queue_delay, 0);
        // The second transfer queues behind the first's *streaming* time
        // (latency pipelines), so it starts before the first's visible end.
        assert!(b.queue_delay > 0);
        assert!(b.start < a.end, "descriptor setup must pipeline");
        assert!(b.end > a.end);
    }

    #[test]
    fn byte_accounting_by_direction() {
        let d = DmaModel::new(&CostModel::default());
        d.transfer_page(0, PageSize::K4, DmaDirection::HostToDevice);
        d.transfer_page(0, PageSize::K64, DmaDirection::DeviceToHost);
        d.transfer_page(0, PageSize::K4, DmaDirection::HostToDevice);
        assert_eq!(d.bytes_in(), 8192);
        assert_eq!(d.bytes_out(), 65536);
    }

    #[test]
    fn checked_transfer_without_injector_matches_plain() {
        let d = DmaModel::new(&CostModel::default());
        let plain = d.transfer(0, 4096, DmaDirection::HostToDevice);
        let d2 = DmaModel::new(&CostModel::default());
        let checked = d2.transfer_checked(
            0,
            4096,
            DmaDirection::HostToDevice,
            None,
            &cmcp_trace::NullTracer,
            0,
        );
        assert!(!checked.failed);
        assert_eq!(checked.spike_cycles, 0);
        assert_eq!(checked.reservation, plain);
    }

    #[test]
    fn spikes_stretch_completion_not_occupancy() {
        use crate::fault::FaultPlan;
        let d = DmaModel::new(&CostModel::default());
        let inj = crate::fault::FaultInjector::new(&FaultPlan::new(5).latency_spikes(0.5, 8));
        let mut spiked = 0;
        let mut now = 0;
        for _ in 0..64 {
            let c = d.transfer_checked(
                now,
                4096,
                DmaDirection::HostToDevice,
                Some(&inj),
                &cmcp_trace::NullTracer,
                0,
            );
            now = c.reservation.end;
            if c.spike_cycles > 0 {
                spiked += 1;
                let streaming = 4096 * 1024 / CostModel::default().dma_bytes_per_kcycle;
                assert_eq!(c.spike_cycles, 8 * streaming);
            }
        }
        assert!(spiked > 5, "50% spike rate over 64 transfers: {spiked}");
        // Engine busy time is unaffected by spikes (completion-path stall).
        let streaming = 4096 * 1024 / CostModel::default().dma_bytes_per_kcycle;
        assert_eq!(d.busy_cycles(), 64 * streaming);
    }

    #[test]
    fn failed_transfers_still_carry_bytes() {
        use crate::fault::FaultPlan;
        let d = DmaModel::new(&CostModel::default());
        let inj = crate::fault::FaultInjector::new(&FaultPlan::new(6).dma_errors(0.5));
        let mut failures = 0;
        for _ in 0..64 {
            let c = d.transfer_checked(
                0,
                4096,
                DmaDirection::DeviceToHost,
                Some(&inj),
                &cmcp_trace::NullTracer,
                0,
            );
            if c.failed {
                failures += 1;
            }
        }
        assert!(failures > 5, "50% over 64 rolls: {failures}");
        assert_eq!(d.bytes_out(), 64 * 4096, "aborted attempts burn the link");
    }

    #[test]
    fn busy_and_queued_statistics() {
        let d = DmaModel::new(&CostModel::default());
        let stream = d.service_time(4096) - CostModel::default().dma_latency;
        d.transfer(0, 4096, DmaDirection::HostToDevice);
        d.transfer(0, 4096, DmaDirection::HostToDevice);
        assert_eq!(d.busy_cycles(), 2 * stream);
        assert_eq!(d.queued_cycles(), stream);
    }
}
