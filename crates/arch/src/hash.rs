//! A fast, deterministic hasher for the kernel hot path.
//!
//! The simulator's fault path performs a dozen hash-map operations per
//! page fault (resident tracking, the PSPT directory, the backing-store
//! presence set, policy bookkeeping), all keyed by small integers —
//! block numbers, page numbers, frame numbers. `std`'s default SipHash
//! is DoS-resistant but costs tens of nanoseconds per `u64` key, which
//! is pure overhead here: every key is simulator-internal, so there is
//! no untrusted input to defend against.
//!
//! [`FxHasher`] is the multiply-fold hasher used by rustc (the `FxHash`
//! algorithm): one rotate, one xor, one multiply per word. It is
//! seed-free and therefore *stable across runs and platforms* — one
//! less source of nondeterminism than `RandomState`, which is seeded
//! per process. No map in this workspace iterates in a way that leaks
//! hash order into results (the deterministic engine's reports are
//! min-clock ordered, and every iteration over one of these maps is
//! either order-insensitive or explicitly sorted), but a stable hasher
//! keeps even debug output reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc `FxHash` multiply constant (a 64-bit truncation of the
/// golden ratio, the same mixer the PSPT directory shard selector uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-fold hasher. Not DoS-resistant — use
/// only for simulator-internal keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized and seed-free.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0xdead_beefu64), hash_of(0xdead_beefu64));
        assert_ne!(hash_of(1u64), hash_of(2u64));
    }

    #[test]
    fn integer_and_byte_paths_agree_on_width() {
        // Not required by the Hasher contract, but documents that the
        // word path is what integer keys hit (one multiply per key).
        assert_eq!(hash_of(7u64), {
            let mut h = FxHasher::default();
            h.write_u64(7);
            h.finish()
        });
    }

    #[test]
    fn maps_work_with_u64_keys() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&999));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42));
    }

    #[test]
    fn distributes_small_sequential_keys() {
        // The hot maps are keyed by small sequential block numbers; a
        // degenerate hasher would collapse them onto few buckets and
        // turn O(1) lookups into list scans. Check spread via distinct
        // high bits (HashMap uses the top 7 bits for its control bytes
        // and the low bits for bucket choice — both must vary).
        let hashes: Vec<u64> = (0..4096u64).map(hash_of).collect();
        let distinct_low: FxHashSet<u64> = hashes.iter().map(|h| h & 0xfff).collect();
        let distinct_top: FxHashSet<u64> = hashes.iter().map(|h| h >> 57).collect();
        assert!(
            distinct_low.len() > 3500,
            "low bits collapse: {}",
            distinct_low.len()
        );
        assert!(
            distinct_top.len() > 100,
            "top bits collapse: {}",
            distinct_top.len()
        );
    }
}
