//! Core-Map Count based Priority replacement — the paper's contribution
//! (§3, Figure 4).
//!
//! Resident blocks are split into two groups:
//!
//! * a **regular group** kept on a plain FIFO list, and
//! * a **priority group**, a priority queue ordered by the number of CPU
//!   cores mapping each block (the *core-map count* PSPT maintains),
//!   holding at most a fraction `p` of the resident blocks.
//!
//! When a PTE is set up (block inserted, or an additional core maps it),
//! the policy consults the core-map count and tries to place the block in
//! the priority group: it enters if the group is below its target size,
//! or displaces the lowest-priority member if its count is larger.
//! Displaced and aged-out members fall back to the FIFO list. Eviction
//! takes the FIFO head; only when the FIFO list is empty is the
//! lowest-priority member of the priority group taken.
//!
//! A slow **aging** pass demotes the longest-untouched priority members
//! so that once-hot pages cannot monopolize the group (paper §3: "all
//! prioritized pages slowly fall back to FIFO").
//!
//! The decisive property: **no accessed-bit reads, hence no remote TLB
//! invalidations for statistics** — the oracle parameter is never used.

use std::collections::{BTreeSet, VecDeque};

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// Tuning knobs for CMCP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmcpConfig {
    /// Target ratio of prioritized blocks, `0.0 ..= 1.0`. With `p → 0`
    /// the policy degenerates to FIFO; with `p → 1` all blocks are
    /// ordered by core-map count (paper §3).
    pub p: f64,
    /// Insertions between aging passes.
    pub aging_period: u64,
    /// Priority members demoted per aging pass (the oldest-touched ones).
    pub aging_batch: usize,
}

impl Default for CmcpConfig {
    fn default() -> CmcpConfig {
        // Aging drains one prioritized block per 32 insertions: fast
        // enough that pages whose mapping phase has passed (e.g. BT
        // switching its domain partition between solves) eventually fall
        // back to FIFO, slow enough that the priority group keeps
        // protecting genuinely shared pages instead of churning them
        // (see the `ablation_aging` bench for the tradeoff curve).
        CmcpConfig {
            p: 0.75,
            aging_period: 32,
            aging_batch: 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PrioEntry {
    count: u32,
    stamp: u64,
}

/// The CMCP policy.
pub struct CmcpPolicy {
    config: CmcpConfig,
    /// Maximum priority-group size: `floor(p × capacity)`.
    prio_target: usize,
    /// FIFO list: `(block, generation)`, stale entries skipped lazily.
    fifo: VecDeque<(u64, u64)>,
    fifo_live: FxHashMap<u64, u64>,
    /// Priority queue: ordered by (count, stamp, block); the *first*
    /// element is the lowest priority (fewest mapping cores, least
    /// recently re-asserted).
    prio: BTreeSet<(u32, u64, u64)>,
    prio_live: FxHashMap<u64, PrioEntry>,
    /// Age index over the priority group: (stamp, block).
    age: BTreeSet<(u64, u64)>,
    seq: u64,
    inserts: u64,
    /// Statistics: how many placements went to each group.
    pub stats: CmcpStats,
}

/// Counters exposed for experiments and ablations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CmcpStats {
    /// Blocks placed into the priority group on arrival or promotion.
    pub prioritized: u64,
    /// Blocks placed on (or demoted to) the FIFO list.
    pub demoted: u64,
    /// Aging-pass demotions.
    pub aged_out: u64,
    /// Evictions served from the FIFO list.
    pub evict_fifo: u64,
    /// Evictions that had to take the lowest-priority member.
    pub evict_prio: u64,
}

impl CmcpPolicy {
    /// CMCP managing a memory of `capacity_blocks` resident blocks.
    pub fn new(config: CmcpConfig, capacity_blocks: usize) -> CmcpPolicy {
        assert!((0.0..=1.0).contains(&config.p), "p must be within [0, 1]");
        CmcpPolicy {
            prio_target: (config.p * capacity_blocks as f64).floor() as usize,
            config,
            fifo: VecDeque::new(),
            fifo_live: FxHashMap::default(),
            prio: BTreeSet::new(),
            prio_live: FxHashMap::default(),
            age: BTreeSet::new(),
            seq: 0,
            inserts: 0,
            stats: CmcpStats::default(),
        }
    }

    /// Current priority-group size.
    pub fn priority_len(&self) -> usize {
        self.prio_live.len()
    }

    /// Current FIFO-list size.
    pub fn fifo_len(&self) -> usize {
        self.fifo_live.len()
    }

    /// The configured ratio `p`.
    pub fn ratio(&self) -> f64 {
        self.config.p
    }

    /// Re-targets the priority group (used by the adaptive variant).
    pub(crate) fn set_ratio(&mut self, p: f64, capacity_blocks: usize) {
        self.config.p = p.clamp(0.0, 1.0);
        self.prio_target = (self.config.p * capacity_blocks as f64).floor() as usize;
        // Shrink eagerly if the new target is smaller.
        while self.prio_live.len() > self.prio_target {
            self.demote_lowest();
        }
    }

    #[inline]
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn fifo_push(&mut self, block: u64) {
        let gen = self.next_seq();
        self.fifo_live.insert(block, gen);
        self.fifo.push_back((block, gen));
    }

    fn fifo_remove(&mut self, block: u64) -> bool {
        self.fifo_live.remove(&block).is_some()
    }

    fn prio_insert(&mut self, block: u64, count: u32) {
        let stamp = self.next_seq();
        self.prio.insert((count, stamp, block));
        self.age.insert((stamp, block));
        self.prio_live.insert(block, PrioEntry { count, stamp });
    }

    fn prio_remove(&mut self, block: u64) -> Option<PrioEntry> {
        let e = self.prio_live.remove(&block)?;
        self.prio.remove(&(e.count, e.stamp, block));
        self.age.remove(&(e.stamp, block));
        Some(e)
    }

    /// Lowest-priority member (fewest mapping cores, oldest stamp).
    fn prio_min(&self) -> Option<(u32, u64)> {
        self.prio.first().map(|&(count, _, block)| (count, block))
    }

    /// Demotes the lowest-priority member to the FIFO tail.
    fn demote_lowest(&mut self) {
        if let Some(&(_, _, block)) = self.prio.first() {
            self.prio_remove(block);
            self.fifo_push(block);
            self.stats.demoted += 1;
        }
    }

    /// The placement rule from paper §3: try to put `block` (with
    /// `count` mapping cores) into the priority group.
    fn try_place_priority(&mut self, block: u64, count: u32) {
        if self.prio_target == 0 {
            self.fifo_push(block);
            self.stats.demoted += 1;
            return;
        }
        if self.prio_live.len() < self.prio_target {
            self.prio_insert(block, count);
            self.stats.prioritized += 1;
            return;
        }
        match self.prio_min() {
            Some((min_count, _)) if count > min_count => {
                self.demote_lowest();
                self.prio_insert(block, count);
                self.stats.prioritized += 1;
            }
            _ => {
                self.fifo_push(block);
                self.stats.demoted += 1;
            }
        }
    }

    /// Aging pass: demote the `aging_batch` longest-untouched members.
    fn age_pass(&mut self) {
        for _ in 0..self.config.aging_batch {
            let Some(&(_, block)) = self.age.first() else {
                break;
            };
            self.prio_remove(block);
            self.fifo_push(block);
            self.stats.aged_out += 1;
        }
    }

    fn drop_stale_fifo_front(&mut self) {
        while let Some(&(block, gen)) = self.fifo.front() {
            if self.fifo_live.get(&block) == Some(&gen) {
                return;
            }
            self.fifo.pop_front();
        }
    }
}

impl ReplacementPolicy for CmcpPolicy {
    fn name(&self) -> &'static str {
        "CMCP"
    }

    fn on_insert(&mut self, block: VirtPage, map_count: usize) {
        debug_assert!(!self.contains(block), "double insert of {block}");
        self.try_place_priority(block.0, map_count as u32);
        self.inserts += 1;
        if self.config.aging_period > 0 && self.inserts.is_multiple_of(self.config.aging_period) {
            self.age_pass();
        }
    }

    fn on_map_count_change(&mut self, block: VirtPage, map_count: usize) {
        let count = map_count as u32;
        if let Some(e) = self.prio_live.get(&block.0).copied() {
            // Refresh key and stamp in place.
            self.prio.remove(&(e.count, e.stamp, block.0));
            self.age.remove(&(e.stamp, block.0));
            let stamp = self.next_seq();
            self.prio.insert((count, stamp, block.0));
            self.age.insert((stamp, block.0));
            self.prio_live.insert(block.0, PrioEntry { count, stamp });
        } else if self.fifo_live.contains_key(&block.0) {
            // A new PTE was set up for a FIFO-resident block: the paper's
            // placement rule runs again with the fresh count.
            let should_promote = self.prio_live.len() < self.prio_target
                || matches!(self.prio_min(), Some((min, _)) if count > min);
            if should_promote && self.prio_target > 0 {
                self.fifo_remove(block.0);
                if self.prio_live.len() >= self.prio_target {
                    self.demote_lowest();
                }
                self.prio_insert(block.0, count);
                self.stats.prioritized += 1;
            }
        } else {
            debug_assert!(false, "map-count change for untracked {block}");
        }
    }

    fn select_victim(&mut self, _oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        self.drop_stale_fifo_front();
        if let Some(&(block, _)) = self.fifo.front() {
            return Some(VirtPage(block));
        }
        // FIFO empty: take the lowest-priority member (paper §3).
        self.prio_min().map(|(_, block)| VirtPage(block))
    }

    fn on_evict(&mut self, block: VirtPage) {
        if self.fifo_remove(block.0) {
            self.stats.evict_fifo += 1;
        } else if self.prio_remove(block.0).is_some() {
            self.stats.evict_prio += 1;
        } else {
            debug_assert!(false, "evicting untracked {block}");
        }
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // CMCP consumes map counts. A MapCount event may describe a block
        // another core evicted between buffering and flushing; the
        // `contains` guard keeps the "no events for non-resident blocks"
        // invariant (and its debug assertion) intact.
        for &ev in events {
            match ev {
                PolicyEvent::Insert { block, map_count } => self.on_insert(block, map_count),
                PolicyEvent::MapCount { block, map_count } => {
                    if self.contains(block) {
                        self.on_map_count_change(block, map_count);
                    }
                }
            }
        }
    }

    fn victim_group(&self, block: VirtPage) -> u8 {
        if self.prio_live.contains_key(&block.0) {
            2
        } else if self.fifo_live.contains_key(&block.0) {
            1
        } else {
            0
        }
    }

    fn resident(&self) -> usize {
        self.fifo_live.len() + self.prio_live.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.fifo_live.contains_key(&block.0) || self.prio_live.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;

    fn cmcp(p: f64, capacity: usize) -> CmcpPolicy {
        CmcpPolicy::new(
            CmcpConfig {
                p,
                aging_period: 0,
                aging_batch: 1,
            },
            capacity,
        )
    }

    fn evict_one(p: &mut CmcpPolicy) -> Option<VirtPage> {
        let v = p.select_victim(&mut NullOracle)?;
        p.on_evict(v);
        Some(v)
    }

    #[test]
    fn p_zero_degenerates_to_fifo() {
        let mut p = cmcp(0.0, 10);
        for b in 0..5u64 {
            p.on_insert(VirtPage(b), (b + 1) as usize);
        }
        assert_eq!(p.priority_len(), 0);
        for b in 0..5u64 {
            assert_eq!(evict_one(&mut p), Some(VirtPage(b)));
        }
    }

    #[test]
    fn p_one_orders_everything_by_count() {
        let mut p = cmcp(1.0, 10);
        p.on_insert(VirtPage(10), 3);
        p.on_insert(VirtPage(11), 1);
        p.on_insert(VirtPage(12), 7);
        p.on_insert(VirtPage(13), 2);
        assert_eq!(p.fifo_len(), 0);
        // Evictions come lowest-count first.
        assert_eq!(evict_one(&mut p), Some(VirtPage(11)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(13)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(10)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(12)));
    }

    #[test]
    fn fifo_is_preferred_victim_source() {
        let mut p = cmcp(0.5, 4); // priority target = 2
        p.on_insert(VirtPage(1), 8);
        p.on_insert(VirtPage(2), 8);
        p.on_insert(VirtPage(3), 1); // group full → FIFO
        assert_eq!(p.priority_len(), 2);
        assert_eq!(p.fifo_len(), 1);
        assert_eq!(evict_one(&mut p), Some(VirtPage(3)), "FIFO head first");
        // FIFO now empty → lowest priority member.
        let v = evict_one(&mut p).unwrap();
        assert_eq!(v, VirtPage(1), "tie on count → oldest stamp");
    }

    #[test]
    fn higher_count_displaces_lowest_priority_member() {
        let mut p = cmcp(0.5, 4); // target 2
        p.on_insert(VirtPage(1), 2);
        p.on_insert(VirtPage(2), 5);
        p.on_insert(VirtPage(3), 9); // displaces block1 (count 2)
        assert_eq!(p.priority_len(), 2);
        assert!(p.fifo_len() == 1);
        assert_eq!(
            evict_one(&mut p),
            Some(VirtPage(1)),
            "displaced member is on FIFO"
        );
    }

    #[test]
    fn equal_count_does_not_displace() {
        let mut p = cmcp(0.5, 4);
        p.on_insert(VirtPage(1), 5);
        p.on_insert(VirtPage(2), 5);
        p.on_insert(VirtPage(3), 5); // equal, not larger → FIFO
        assert_eq!(evict_one(&mut p), Some(VirtPage(3)));
    }

    #[test]
    fn map_count_change_promotes_from_fifo() {
        let mut p = cmcp(0.5, 4);
        p.on_insert(VirtPage(1), 6);
        p.on_insert(VirtPage(2), 6);
        p.on_insert(VirtPage(3), 1); // → FIFO
                                     // More cores start mapping block 3.
        p.on_map_count_change(VirtPage(3), 9);
        assert!(p.fifo_len() == 1, "displaced member took its place on FIFO");
        // Block 3 is now prioritized; the displaced 6-count block is the victim.
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
        assert!(p.contains(VirtPage(3)));
    }

    #[test]
    fn map_count_change_updates_priority_ordering() {
        let mut p = cmcp(1.0, 10);
        p.on_insert(VirtPage(1), 2);
        p.on_insert(VirtPage(2), 3);
        p.on_map_count_change(VirtPage(1), 10);
        assert_eq!(
            evict_one(&mut p),
            Some(VirtPage(2)),
            "block1 rose above block2"
        );
    }

    #[test]
    fn aging_demotes_oldest_member() {
        let mut p = CmcpPolicy::new(
            CmcpConfig {
                p: 1.0,
                aging_period: 3,
                aging_batch: 1,
            },
            10,
        );
        p.on_insert(VirtPage(1), 9);
        p.on_insert(VirtPage(2), 9);
        p.on_insert(VirtPage(3), 9); // third insert triggers aging → block1 demoted
        assert_eq!(p.fifo_len(), 1);
        assert_eq!(p.stats.aged_out, 1);
        assert_eq!(
            evict_one(&mut p),
            Some(VirtPage(1)),
            "aged-out block evicts first"
        );
    }

    #[test]
    fn aging_refresh_protects_recently_reasserted_blocks() {
        let mut p = CmcpPolicy::new(
            CmcpConfig {
                p: 1.0,
                aging_period: 3,
                aging_batch: 1,
            },
            10,
        );
        p.on_insert(VirtPage(1), 9);
        p.on_insert(VirtPage(2), 9);
        p.on_map_count_change(VirtPage(1), 10); // refreshes block1's stamp
        p.on_insert(VirtPage(3), 9); // aging demotes block2 now
        assert!(p.contains(VirtPage(1)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(2)));
    }

    #[test]
    fn eviction_statistics() {
        let mut p = cmcp(0.5, 2); // target 1
        p.on_insert(VirtPage(1), 4);
        p.on_insert(VirtPage(2), 1);
        evict_one(&mut p); // FIFO (block2)
        evict_one(&mut p); // priority (block1)
        assert_eq!(p.stats.evict_fifo, 1);
        assert_eq!(p.stats.evict_prio, 1);
        assert_eq!(p.resident(), 0);
    }

    #[test]
    fn reinsert_after_eviction_is_clean() {
        let mut p = cmcp(0.5, 4);
        p.on_insert(VirtPage(1), 1);
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
        p.on_insert(VirtPage(1), 3);
        assert!(p.contains(VirtPage(1)));
        assert_eq!(p.resident(), 1);
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
        assert_eq!(p.resident(), 0);
    }

    #[test]
    #[should_panic(expected = "p must be within")]
    fn rejects_bad_ratio() {
        CmcpPolicy::new(
            CmcpConfig {
                p: 1.5,
                ..Default::default()
            },
            10,
        );
    }

    #[test]
    fn never_consults_the_oracle() {
        // An oracle that panics proves CMCP performs zero accessed-bit
        // reads — the paper's headline property.
        struct PanicOracle;
        impl AccessBitOracle for PanicOracle {
            fn test_and_clear(&mut self, _b: VirtPage) -> bool {
                panic!("CMCP must not read accessed bits");
            }
        }
        let mut p = cmcp(0.5, 4);
        for b in 0..8u64 {
            p.on_insert(VirtPage(b), (b % 3 + 1) as usize);
            if b % 2 == 0 {
                let v = p.select_victim(&mut PanicOracle).unwrap();
                p.on_evict(v);
            }
        }
        assert!(!p.wants_periodic_scan());
    }
}
