//! # cmcp-core — page replacement policies
//!
//! The paper's primary contribution, plus every baseline it is measured
//! against:
//!
//! * [`cmcp`] — **Core-Map Count based Priority replacement** (paper §3):
//!   victims are prioritized by the number of CPU cores mapping each
//!   page, a signal PSPT provides for free. Two victim groups — a plain
//!   FIFO list and a priority group holding at most a fraction `p` of
//!   resident pages — plus a slow aging mechanism demoting stale
//!   prioritized pages. Crucially, the policy **never reads accessed
//!   bits**, so it causes zero statistics shootdowns.
//! * [`fifo`] — the baseline FIFO policy.
//! * [`lru`] — a two-list (active/inactive) LRU approximation "the same
//!   algorithm employed by the Linux kernel" (paper §5.1), driven by a
//!   periodic accessed-bit scan whose TLB invalidation cost is the
//!   paper's central negative result.
//! * [`clock`] — the CLOCK second-chance algorithm; the paper notes it
//!   relies on the same accessed bits and "would suffer from the same
//!   issues" — implemented here to demonstrate that claim.
//! * [`lfu`] — least-frequently-used via periodic accessed-bit sampling,
//!   same caveat.
//! * [`random`] — deterministic pseudo-random eviction, a lower bound.
//! * [`adaptive`] — the paper's §5.6 future work: CMCP with `p` adjusted
//!   dynamically from page-fault-frequency feedback.
//!
//! Policies are deliberately decoupled from the kernel: they see opaque
//! block identifiers ([`VirtPage`] heads) and an [`AccessBitOracle`]
//! through which accessed-bit reads — and only those — can be performed,
//! so the *only* way for a policy to obtain recency information is the
//! mechanism whose cost the paper measures.
//!
//! [`VirtPage`]: cmcp_arch::VirtPage
//! [`AccessBitOracle`]: policy::AccessBitOracle

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod clock;
pub mod cmcp;
pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod policy;
pub mod random;

pub use adaptive::AdaptiveCmcpPolicy;
pub use clock::ClockPolicy;
pub use cmcp::{CmcpConfig, CmcpPolicy};
pub use fifo::FifoPolicy;
pub use lfu::LfuPolicy;
pub use lru::LruPolicy;
pub use policy::{AccessBitOracle, NullOracle, PolicyEvent, PolicyKind, ReplacementPolicy};
pub use random::RandomPolicy;
