//! FIFO replacement — the paper's baseline policy.
//!
//! Evicts resident blocks in arrival order. Needs no usage statistics at
//! all, which is why it *beats* LRU on many-cores in the paper despite
//! taking more page faults: it never causes a statistics shootdown.

use std::collections::VecDeque;

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// FIFO over resident blocks.
///
/// The queue stores `(block, generation)` pairs and membership lives in a
/// map from block to its current generation; stale queue entries (from
/// blocks that were evicted and reinserted) are skipped lazily.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<(u64, u64)>,
    live: FxHashMap<u64, u64>,
    next_gen: u64,
}

impl FifoPolicy {
    /// An empty FIFO.
    pub fn new() -> FifoPolicy {
        FifoPolicy::default()
    }

    fn drop_stale_front(&mut self) {
        while let Some(&(block, gen)) = self.queue.front() {
            if self.live.get(&block) == Some(&gen) {
                return;
            }
            self.queue.pop_front();
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn on_insert(&mut self, block: VirtPage, _map_count: usize) {
        debug_assert!(
            !self.live.contains_key(&block.0),
            "double insert of {block}"
        );
        let gen = self.next_gen;
        self.next_gen += 1;
        self.live.insert(block.0, gen);
        self.queue.push_back((block.0, gen));
    }

    fn on_map_count_change(&mut self, _block: VirtPage, _map_count: usize) {
        // FIFO ignores sharing information.
    }

    fn select_victim(&mut self, _oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        self.drop_stale_front();
        self.queue.front().map(|&(block, _)| VirtPage(block))
    }

    fn on_evict(&mut self, block: VirtPage) {
        let removed = self.live.remove(&block.0);
        debug_assert!(removed.is_some(), "evicting untracked {block}");
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // FIFO never looks at map counts, so only inserts matter.
        for &ev in events {
            if let PolicyEvent::Insert { block, map_count } = ev {
                self.on_insert(block, map_count);
            }
        }
    }

    fn resident(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.live.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;

    fn evict_one(p: &mut FifoPolicy) -> Option<VirtPage> {
        let v = p.select_victim(&mut NullOracle)?;
        p.on_evict(v);
        Some(v)
    }

    #[test]
    fn evicts_in_arrival_order() {
        let mut p = FifoPolicy::new();
        for b in [3u64, 1, 2] {
            p.on_insert(VirtPage(b), 1);
        }
        assert_eq!(evict_one(&mut p), Some(VirtPage(3)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(2)));
        assert_eq!(evict_one(&mut p), None);
    }

    #[test]
    fn reinsert_goes_to_back() {
        let mut p = FifoPolicy::new();
        p.on_insert(VirtPage(1), 1);
        p.on_insert(VirtPage(2), 1);
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
        p.on_insert(VirtPage(1), 1); // faulted back in
        assert_eq!(evict_one(&mut p), Some(VirtPage(2)));
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)));
    }

    #[test]
    fn select_is_a_peek() {
        let mut p = FifoPolicy::new();
        p.on_insert(VirtPage(9), 1);
        assert_eq!(p.select_victim(&mut NullOracle), Some(VirtPage(9)));
        assert_eq!(p.select_victim(&mut NullOracle), Some(VirtPage(9)));
        assert_eq!(p.resident(), 1);
        assert!(p.contains(VirtPage(9)));
    }

    #[test]
    fn map_count_changes_are_ignored() {
        let mut p = FifoPolicy::new();
        p.on_insert(VirtPage(1), 1);
        p.on_insert(VirtPage(2), 1);
        p.on_map_count_change(VirtPage(2), 56);
        assert_eq!(evict_one(&mut p), Some(VirtPage(1)), "order unchanged");
        assert_eq!(evict_one(&mut p), Some(VirtPage(2)));
    }

    #[test]
    fn no_scan_timer() {
        assert!(!FifoPolicy::new().wants_periodic_scan());
    }
}
