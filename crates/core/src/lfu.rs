//! LFU (least frequently used) via periodic accessed-bit sampling.
//!
//! True LFU needs a reference counter per page, which no x86-class MMU
//! provides; practical implementations approximate frequency by sampling
//! the accessed bit on a timer — every sample that finds the bit set
//! increments the block's frequency and *clears the bit*, which on x86
//! forces remote TLB invalidations. The paper lists LFU (§3) among the
//! policies that share LRU's statistics cost; this implementation makes
//! the claim measurable.

use std::collections::BTreeSet;

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// Frequency-ordered replacement with accessed-bit sampling.
#[derive(Debug, Default)]
pub struct LfuPolicy {
    /// (frequency, insertion seq, block) — first element is the victim:
    /// lowest frequency, oldest insertion breaking ties (LFU with FIFO
    /// tie-break).
    order: BTreeSet<(u64, u64, u64)>,
    live: FxHashMap<u64, (u64, u64)>, // block → (freq, seq)
    /// Round-robin scan cursor (block ids ≥ cursor scan first).
    cursor: u64,
    next_seq: u64,
}

impl LfuPolicy {
    /// An empty policy.
    pub fn new() -> LfuPolicy {
        LfuPolicy::default()
    }

    /// Current sampled frequency of `block`, if resident.
    pub fn frequency(&self, block: VirtPage) -> Option<u64> {
        self.live.get(&block.0).map(|&(f, _)| f)
    }

    fn bump(&mut self, block: u64) {
        if let Some(&(freq, seq)) = self.live.get(&block) {
            self.order.remove(&(freq, seq, block));
            self.order.insert((freq + 1, seq, block));
            self.live.insert(block, (freq + 1, seq));
        }
    }
}

impl ReplacementPolicy for LfuPolicy {
    fn name(&self) -> &'static str {
        "LFU"
    }

    fn on_insert(&mut self, block: VirtPage, _map_count: usize) {
        debug_assert!(!self.contains(block), "double insert of {block}");
        self.next_seq += 1;
        self.live.insert(block.0, (0, self.next_seq));
        self.order.insert((0, self.next_seq, block.0));
    }

    fn on_map_count_change(&mut self, _block: VirtPage, _map_count: usize) {}

    fn select_victim(&mut self, _oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        self.order.first().map(|&(_, _, block)| VirtPage(block))
    }

    fn on_evict(&mut self, block: VirtPage) {
        if let Some((freq, seq)) = self.live.remove(&block.0) {
            self.order.remove(&(freq, seq, block.0));
        } else {
            debug_assert!(false, "evicting untracked {block}");
        }
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // LFU never looks at map counts, so only inserts matter.
        for &ev in events {
            if let PolicyEvent::Insert { block, map_count } = ev {
                self.on_insert(block, map_count);
            }
        }
    }

    fn wants_periodic_scan(&self) -> bool {
        true
    }

    fn scan_tick(&mut self, budget: usize, oracle: &mut dyn AccessBitOracle) {
        // Sample up to `budget` resident blocks round-robin by block id so
        // every block is sampled at a steady rate.
        let mut keys: Vec<u64> = self.live.keys().copied().collect();
        keys.sort_unstable();
        let start = keys.partition_point(|&b| b < self.cursor);
        let mut sampled: Vec<u64> = keys[start..].iter().copied().take(budget).collect();
        if sampled.len() < budget {
            // Wrap around to the smallest ids.
            sampled.extend(keys[..start].iter().copied().take(budget - sampled.len()));
        }
        // Cursor resumes after the last block visited in traversal order.
        self.cursor = sampled.last().map(|&b| b + 1).unwrap_or(0);
        sampled.dedup();
        for block in sampled {
            if oracle.test_and_clear(VirtPage(block)) {
                self.bump(block);
            }
        }
    }

    fn resident(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.live.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;
    use std::collections::HashSet;

    struct SetOracle(HashSet<u64>);

    impl AccessBitOracle for SetOracle {
        fn test_and_clear(&mut self, block: VirtPage) -> bool {
            self.0.contains(&block.0)
        }
    }

    #[test]
    fn victim_is_lowest_frequency() {
        let mut p = LfuPolicy::new();
        for b in 0..3u64 {
            p.on_insert(VirtPage(b), 1);
        }
        // Blocks 0 and 2 are hot over two sampling rounds.
        let mut o = SetOracle([0, 2].into_iter().collect());
        p.scan_tick(10, &mut o);
        p.scan_tick(10, &mut o);
        assert_eq!(p.frequency(VirtPage(0)), Some(2));
        assert_eq!(p.frequency(VirtPage(1)), Some(0));
        assert_eq!(p.select_victim(&mut NullOracle), Some(VirtPage(1)));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut p = LfuPolicy::new();
        p.on_insert(VirtPage(9), 1);
        p.on_insert(VirtPage(3), 1);
        assert_eq!(p.select_victim(&mut NullOracle), Some(VirtPage(9)));
    }

    #[test]
    fn eviction_removes_from_both_indices() {
        let mut p = LfuPolicy::new();
        p.on_insert(VirtPage(1), 1);
        p.on_insert(VirtPage(2), 1);
        let v = p.select_victim(&mut NullOracle).unwrap();
        p.on_evict(v);
        assert_eq!(p.resident(), 1);
        assert!(!p.contains(v));
        // Reinsert is clean.
        p.on_insert(v, 1);
        assert_eq!(p.resident(), 2);
    }

    #[test]
    fn scan_cursor_rotates_over_all_blocks() {
        let mut p = LfuPolicy::new();
        for b in 0..6u64 {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = SetOracle((0..6).collect());
        // Budget 2 per tick: after 3 ticks every block was sampled once.
        for _ in 0..3 {
            p.scan_tick(2, &mut o);
        }
        for b in 0..6u64 {
            assert!(
                p.frequency(VirtPage(b)).unwrap() >= 1,
                "block {b} never sampled"
            );
        }
    }
}
