//! Uniform random eviction — a statistics-free lower bound.
//!
//! Like FIFO and CMCP it never reads accessed bits; unlike them it uses
//! no structure at all, which makes it a useful floor in policy
//! ablations. Randomness is a seeded xorshift so runs stay reproducible.

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// Seeded random replacement.
#[derive(Debug)]
pub struct RandomPolicy {
    blocks: Vec<u64>,
    index: FxHashMap<u64, usize>,
    state: u64,
}

impl RandomPolicy {
    /// A policy drawing from the xorshift stream seeded with `seed`.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            blocks: Vec::new(),
            index: FxHashMap::default(),
            state: seed.max(1), // xorshift must not start at 0
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "RANDOM"
    }

    fn on_insert(&mut self, block: VirtPage, _map_count: usize) {
        debug_assert!(!self.contains(block), "double insert of {block}");
        self.index.insert(block.0, self.blocks.len());
        self.blocks.push(block.0);
    }

    fn on_map_count_change(&mut self, _block: VirtPage, _map_count: usize) {}

    fn select_victim(&mut self, _oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        if self.blocks.is_empty() {
            return None;
        }
        let i = (self.next_u64() % self.blocks.len() as u64) as usize;
        Some(VirtPage(self.blocks[i]))
    }

    fn on_evict(&mut self, block: VirtPage) {
        let Some(i) = self.index.remove(&block.0) else {
            debug_assert!(false, "evicting untracked {block}");
            return;
        };
        self.blocks.swap_remove(i);
        if let Some(&moved) = self.blocks.get(i) {
            self.index.insert(moved, i);
        }
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // RANDOM never looks at map counts, so only inserts matter.
        for &ev in events {
            if let PolicyEvent::Insert { block, map_count } = ev {
                self.on_insert(block, map_count);
            }
        }
    }

    fn resident(&self) -> usize {
        self.blocks.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.index.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;

    #[test]
    fn evicts_only_resident_blocks() {
        let mut p = RandomPolicy::new(42);
        for b in 0..10u64 {
            p.on_insert(VirtPage(b), 1);
        }
        for _ in 0..10 {
            let v = p.select_victim(&mut NullOracle).unwrap();
            assert!(p.contains(v));
            p.on_evict(v);
            assert!(!p.contains(v));
        }
        assert_eq!(p.resident(), 0);
        assert_eq!(p.select_victim(&mut NullOracle), None);
    }

    #[test]
    fn same_seed_same_sequence() {
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            for b in 0..32u64 {
                p.on_insert(VirtPage(b), 1);
            }
            let mut order = Vec::new();
            for _ in 0..32 {
                let v = p.select_victim(&mut NullOracle).unwrap();
                p.on_evict(v);
                order.push(v.0);
            }
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut p = RandomPolicy::new(1);
        for b in 0..5u64 {
            p.on_insert(VirtPage(b), 1);
        }
        // Evict a specific middle block by asking until we get it would be
        // nondeterministic; instead evict directly (kernel force-evict path).
        p.on_evict(VirtPage(1));
        assert_eq!(p.resident(), 4);
        for b in [0u64, 2, 3, 4] {
            assert!(p.contains(VirtPage(b)), "block {b} must survive");
        }
        // All remaining blocks are still reachable as victims.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let v = p.select_victim(&mut NullOracle).unwrap();
            p.on_evict(v);
            seen.insert(v.0);
        }
        assert_eq!(seen.len(), 4);
    }
}
