//! Adaptive CMCP: the paper's §5.6 future work, implemented.
//!
//! > "We adjusted the algorithm's parameter manually in this paper, but
//! > determining the optimal value dynamically based on runtime
//! > performance feedback (such as page fault frequency) is part of our
//! > future work."
//!
//! Figure 9 shows the best ratio `p` is workload-specific (low for CG,
//! high for LU/SCALE). This variant hill-climbs `p` online using
//! *refaults* as the feedback signal: a bounded ghost list remembers
//! recently evicted blocks, and an insertion that hits the ghost list
//! means the policy evicted something still needed. Every window the
//! refault count is compared with the previous window; if it got worse,
//! the direction of the `p` adjustment flips.

use std::collections::VecDeque;

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::cmcp::{CmcpConfig, CmcpPolicy};
use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// How far `p` moves per adaptation window.
const STEP: f64 = 0.1;
/// Inserts per adaptation window.
const WINDOW: u64 = 512;

/// CMCP with a self-tuning priority ratio.
pub struct AdaptiveCmcpPolicy {
    inner: CmcpPolicy,
    capacity_blocks: usize,
    /// Ghost list of recently evicted blocks (bounded to capacity).
    ghost: VecDeque<u64>,
    ghost_set: FxHashMap<u64, u32>,
    ghost_cap: usize,
    refaults_window: u64,
    refaults_prev: u64,
    inserts: u64,
    direction: f64,
    /// Adaptation trace: (window index, chosen p, refaults) — for the
    /// ablation bench and tests.
    pub history: Vec<(u64, f64, u64)>,
}

impl AdaptiveCmcpPolicy {
    /// Starts at `p = 0.5` and adapts from there.
    pub fn new(capacity_blocks: usize) -> AdaptiveCmcpPolicy {
        AdaptiveCmcpPolicy {
            inner: CmcpPolicy::new(
                CmcpConfig {
                    p: 0.5,
                    ..Default::default()
                },
                capacity_blocks,
            ),
            capacity_blocks,
            ghost: VecDeque::new(),
            ghost_set: FxHashMap::default(),
            ghost_cap: capacity_blocks.max(16),
            refaults_window: 0,
            refaults_prev: u64::MAX,
            inserts: 0,
            direction: STEP,
            history: Vec::new(),
        }
    }

    /// The ratio currently in force.
    pub fn current_p(&self) -> f64 {
        self.inner.ratio()
    }

    fn ghost_insert(&mut self, block: u64) {
        *self.ghost_set.entry(block).or_insert(0) += 1;
        self.ghost.push_back(block);
        while self.ghost.len() > self.ghost_cap {
            let old = self.ghost.pop_front().unwrap();
            match self.ghost_set.get_mut(&old) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.ghost_set.remove(&old);
                }
            }
        }
    }

    fn maybe_adapt(&mut self) {
        if !self.inserts.is_multiple_of(WINDOW) {
            return;
        }
        let window_idx = self.inserts / WINDOW;
        // Hill climb: keep direction while refaults improve, flip when
        // they worsen.
        if self.refaults_prev != u64::MAX && self.refaults_window > self.refaults_prev {
            self.direction = -self.direction;
        }
        let new_p = (self.inner.ratio() + self.direction).clamp(0.0, 1.0);
        self.inner.set_ratio(new_p, self.capacity_blocks);
        self.history.push((window_idx, new_p, self.refaults_window));
        self.refaults_prev = self.refaults_window;
        self.refaults_window = 0;
    }
}

impl ReplacementPolicy for AdaptiveCmcpPolicy {
    fn name(&self) -> &'static str {
        "CMCP-adaptive"
    }

    fn on_insert(&mut self, block: VirtPage, map_count: usize) {
        if self.ghost_set.contains_key(&block.0) {
            self.refaults_window += 1;
        }
        self.inner.on_insert(block, map_count);
        self.inserts += 1;
        self.maybe_adapt();
    }

    fn on_map_count_change(&mut self, block: VirtPage, map_count: usize) {
        self.inner.on_map_count_change(block, map_count);
    }

    fn select_victim(&mut self, oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        self.inner.select_victim(oracle)
    }

    fn on_evict(&mut self, block: VirtPage) {
        self.ghost_insert(block.0);
        self.inner.on_evict(block);
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // Route through our own on_insert so refault detection and the
        // adaptation windows see batched inserts too; drop MapCount
        // events whose block was evicted before the flush.
        for &ev in events {
            match ev {
                PolicyEvent::Insert { block, map_count } => self.on_insert(block, map_count),
                PolicyEvent::MapCount { block, map_count } => {
                    if self.contains(block) {
                        self.on_map_count_change(block, map_count);
                    }
                }
            }
        }
    }

    fn resident(&self) -> usize {
        self.inner.resident()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.inner.contains(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;

    #[test]
    fn starts_at_half() {
        let p = AdaptiveCmcpPolicy::new(100);
        assert!((p.current_p() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn refaults_are_detected() {
        let mut p = AdaptiveCmcpPolicy::new(4);
        p.on_insert(VirtPage(1), 1);
        let v = p.select_victim(&mut NullOracle).unwrap();
        p.on_evict(v);
        p.on_insert(v, 1); // refault
        assert_eq!(p.refaults_window, 1);
    }

    #[test]
    fn p_moves_after_each_window() {
        let mut p = AdaptiveCmcpPolicy::new(64);
        for i in 0..(WINDOW * 3) {
            let block = VirtPage(i % 128);
            if p.contains(block) {
                p.on_evict(block);
            }
            if p.resident() >= 64 {
                let v = p.select_victim(&mut NullOracle).unwrap();
                p.on_evict(v);
            }
            if !p.contains(block) {
                p.on_insert(block, 1);
            }
        }
        assert!(p.history.len() >= 2, "at least two adaptation windows ran");
        assert!(p.current_p() >= 0.0 && p.current_p() <= 1.0);
        // p actually moved away from the start value at some point.
        assert!(p.history.iter().any(|&(_, pv, _)| (pv - 0.5).abs() > 1e-9));
    }

    #[test]
    fn direction_flips_when_refaults_worsen() {
        let mut p = AdaptiveCmcpPolicy::new(8);
        // Window 1: no refaults (fresh blocks only).
        for i in 0..WINDOW {
            let b = VirtPage(1_000_000 + i);
            if p.resident() >= 8 {
                let v = p.select_victim(&mut NullOracle).unwrap();
                p.on_evict(v);
            }
            p.on_insert(b, 1);
        }
        let p_after_w1 = p.current_p();
        assert!(
            p_after_w1 > 0.5,
            "first window moves p up (direction starts positive)"
        );
        // Subsequent windows: every insert is a refault of a recently
        // evicted block (cycle through 16 blocks with capacity 8). Run
        // until at least two more adaptation boundaries have passed
        // (some iterations skip when the block is still resident).
        let mut i = 0u64;
        while p.history.len() < 3 && i < WINDOW * 32 {
            let b = VirtPage(2_000_000 + (i % 16));
            i += 1;
            if p.contains(b) {
                continue;
            }
            if p.resident() >= 8 {
                let v = p.select_victim(&mut NullOracle).unwrap();
                p.on_evict(v);
            }
            p.on_insert(b, 1);
        }
        // Direction must have flipped at least once because refaults
        // went 0 → many.
        let flipped = p.history.windows(2).any(|w| {
            let d0 = w[1].1 - w[0].1;
            d0 < 0.0
        });
        assert!(
            flipped,
            "worsening refaults must flip the direction: {:?}",
            p.history
        );
    }
}
