//! Two-list LRU approximation — "the same algorithm employed by the
//! Linux kernel" (paper §5.1).
//!
//! Resident blocks live on an *active* and an *inactive* list. A timer
//! (the kernel fires it every 10 ms of virtual time, from dedicated
//! hyperthreads as in the paper) scans accessed bits and moves blocks
//! between the lists; eviction takes the oldest inactive block, giving a
//! second chance — and a promotion to active — to blocks whose accessed
//! bit is found set at reclaim, as Linux's reclaim path does.
//!
//! Every accessed-bit read goes through the [`AccessBitOracle`], where
//! the kernel charges the PTE scan and the remote TLB invalidations that
//! clearing a set bit requires on x86. That cost — not the policy itself
//! — is what makes LRU lose to FIFO on many-cores (paper §5.5).

use std::collections::VecDeque;

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListId {
    Active,
    Inactive,
}

/// The two-list LRU approximation.
#[derive(Debug, Default)]
pub struct LruPolicy {
    /// Front = oldest. Entries are (block, generation).
    active: VecDeque<(u64, u64)>,
    inactive: VecDeque<(u64, u64)>,
    /// block → (list, generation). Stale queue entries are skipped.
    live: FxHashMap<u64, (ListId, u64)>,
    next_gen: u64,
    /// Statistics: promotions/demotions between the lists.
    pub promotions: u64,
    /// Demotions active → inactive.
    pub demotions: u64,
}

impl LruPolicy {
    /// An empty policy.
    pub fn new() -> LruPolicy {
        LruPolicy::default()
    }

    /// Current inactive-list length.
    pub fn inactive_len(&self) -> usize {
        self.live
            .values()
            .filter(|(l, _)| *l == ListId::Inactive)
            .count()
    }

    /// Current active-list length.
    pub fn active_len(&self) -> usize {
        self.live.len() - self.inactive_len()
    }

    fn push(&mut self, list: ListId, block: u64) {
        self.next_gen += 1;
        let gen = self.next_gen;
        self.live.insert(block, (list, gen));
        match list {
            ListId::Active => self.active.push_back((block, gen)),
            ListId::Inactive => self.inactive.push_back((block, gen)),
        }
    }

    /// Pops the oldest *valid* entry of `list`, if any.
    fn pop_oldest(&mut self, list: ListId) -> Option<u64> {
        let queue = match list {
            ListId::Active => &mut self.active,
            ListId::Inactive => &mut self.inactive,
        };
        while let Some((block, gen)) = queue.pop_front() {
            if self.live.get(&block) == Some(&(list, gen)) {
                return Some(block);
            }
        }
        None
    }
}

impl ReplacementPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn on_insert(&mut self, block: VirtPage, _map_count: usize) {
        debug_assert!(!self.contains(block), "double insert of {block}");
        // New pages start on the inactive list, as in Linux.
        self.push(ListId::Inactive, block.0);
    }

    fn on_map_count_change(&mut self, _block: VirtPage, _map_count: usize) {
        // LRU ignores sharing information.
    }

    fn select_victim(&mut self, oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        // Reclaim: take from the cold end of the inactive list, giving a
        // second chance (promotion to active) to referenced blocks. Bound
        // the scan so a fully-hot memory still yields a victim.
        let mut attempts = self.live.len() + 1;
        loop {
            match self.pop_oldest(ListId::Inactive) {
                Some(block) => {
                    attempts = attempts.saturating_sub(1);
                    if attempts > 0 && oracle.test_and_clear(VirtPage(block)) {
                        self.promotions += 1;
                        self.push(ListId::Active, block);
                        continue;
                    }
                    // Victim found: put it back at the cold end so the
                    // kernel's subsequent on_evict sees consistent state.
                    self.next_gen += 1;
                    let gen = self.next_gen;
                    self.live.insert(block, (ListId::Inactive, gen));
                    self.inactive.push_front((block, gen));
                    return Some(VirtPage(block));
                }
                None => {
                    // Inactive exhausted: refill from the active list's
                    // cold end (Linux's shrink_active_list).
                    let block = self.pop_oldest(ListId::Active)?;
                    self.demotions += 1;
                    self.push(ListId::Inactive, block);
                }
            }
        }
    }

    fn on_evict(&mut self, block: VirtPage) {
        let removed = self.live.remove(&block.0);
        debug_assert!(removed.is_some(), "evicting untracked {block}");
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // LRU never looks at map counts, so only inserts matter.
        for &ev in events {
            if let PolicyEvent::Insert { block, map_count } = ev {
                self.on_insert(block, map_count);
            }
        }
    }

    fn wants_periodic_scan(&self) -> bool {
        true
    }

    fn scan_tick(&mut self, budget: usize, oracle: &mut dyn AccessBitOracle) {
        // Linux's kswapd-style aging: walk the cold end of the active
        // list; referenced blocks rotate to the hot end, unreferenced
        // ones are demoted. Spend any remaining budget aging the
        // inactive list so hot blocks get promoted before reclaim
        // reaches them.
        let active_share = budget / 2;
        for _ in 0..active_share {
            let Some(block) = self.pop_oldest(ListId::Active) else {
                break;
            };
            if oracle.test_and_clear(VirtPage(block)) {
                self.push(ListId::Active, block);
            } else {
                self.demotions += 1;
                self.push(ListId::Inactive, block);
            }
        }
        for _ in 0..budget.saturating_sub(active_share) {
            let Some(block) = self.pop_oldest(ListId::Inactive) else {
                break;
            };
            if oracle.test_and_clear(VirtPage(block)) {
                self.promotions += 1;
                self.push(ListId::Active, block);
            } else {
                self.push(ListId::Inactive, block);
            }
        }
    }

    fn resident(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.live.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;
    use std::collections::HashSet;

    /// Oracle backed by a set of "hot" blocks; counts reads.
    struct SetOracle {
        hot: HashSet<u64>,
        reads: u64,
        sticky: bool,
    }

    impl SetOracle {
        fn new(hot: &[u64], sticky: bool) -> SetOracle {
            SetOracle {
                hot: hot.iter().copied().collect(),
                reads: 0,
                sticky,
            }
        }
    }

    impl AccessBitOracle for SetOracle {
        fn test_and_clear(&mut self, block: VirtPage) -> bool {
            self.reads += 1;
            if self.sticky {
                self.hot.contains(&block.0)
            } else {
                self.hot.remove(&block.0)
            }
        }
    }

    fn evict_one(p: &mut LruPolicy, o: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        let v = p.select_victim(o)?;
        p.on_evict(v);
        Some(v)
    }

    #[test]
    fn cold_blocks_evict_in_insertion_order() {
        let mut p = LruPolicy::new();
        for b in [5u64, 6, 7] {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = NullOracle;
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(5)));
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(6)));
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(7)));
    }

    #[test]
    fn referenced_block_gets_second_chance() {
        let mut p = LruPolicy::new();
        p.on_insert(VirtPage(1), 1);
        p.on_insert(VirtPage(2), 1);
        // Block 1 is hot: reclaim must skip it and take block 2.
        let mut o = SetOracle::new(&[1], false);
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(2)));
        assert!(p.contains(VirtPage(1)));
        assert_eq!(p.promotions, 1);
        assert!(o.reads >= 1, "second chance requires an accessed-bit read");
    }

    #[test]
    fn fully_hot_memory_still_yields_a_victim() {
        let mut p = LruPolicy::new();
        for b in 0..4u64 {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = SetOracle::new(&[0, 1, 2, 3], true);
        let v = evict_one(&mut p, &mut o);
        assert!(v.is_some(), "bounded scan must not livelock");
        assert_eq!(p.resident(), 3);
    }

    #[test]
    fn scan_tick_promotes_hot_inactive_blocks() {
        let mut p = LruPolicy::new();
        for b in 0..4u64 {
            p.on_insert(VirtPage(b), 1);
        }
        assert_eq!(p.active_len(), 0);
        let mut o = SetOracle::new(&[2], false);
        p.scan_tick(8, &mut o);
        assert_eq!(p.active_len(), 1, "hot block promoted");
        // The hot block now survives evictions of all cold blocks.
        let mut null = NullOracle;
        for _ in 0..3 {
            let v = evict_one(&mut p, &mut null).unwrap();
            assert_ne!(v, VirtPage(2));
        }
        assert!(p.contains(VirtPage(2)));
    }

    #[test]
    fn scan_tick_demotes_cold_active_blocks() {
        let mut p = LruPolicy::new();
        p.on_insert(VirtPage(1), 1);
        // Promote block 1 to active.
        let mut o = SetOracle::new(&[1], false);
        p.scan_tick(4, &mut o);
        assert_eq!(p.active_len(), 1);
        // Now it is cold: the next scan demotes it.
        let mut cold = NullOracle;
        p.scan_tick(4, &mut cold);
        assert_eq!(p.active_len(), 0);
        assert!(p.demotions >= 1);
    }

    #[test]
    fn lru_reduces_faults_versus_fifo_on_hot_cold_mix() {
        // The paper's Table 1 observation, reproduced in miniature: with
        // a working set of hot blocks plus a cold stream, LRU takes fewer
        // faults than FIFO at equal capacity.
        use crate::fifo::FifoPolicy;
        let capacity = 8usize;
        let hot: Vec<u64> = (0..4).collect();
        // Reference string: hot blocks touched every round, 12 cold
        // blocks streamed through repeatedly.
        let mut reference = Vec::new();
        for round in 0..30u64 {
            for &h in &hot {
                reference.push(h);
            }
            for c in 0..4u64 {
                reference.push(100 + (round * 4 + c) % 12);
            }
        }

        fn run(
            policy: &mut dyn ReplacementPolicy,
            reference: &[u64],
            capacity: usize,
            hot: &[u64],
        ) -> u64 {
            let mut faults = 0;
            for &b in reference {
                if !policy.contains(VirtPage(b)) {
                    faults += 1;
                    if policy.resident() >= capacity {
                        // Hot blocks always have their bit set when examined.
                        let mut o = SetOracle::new(hot, true);
                        let v = policy.select_victim(&mut o).unwrap();
                        policy.on_evict(v);
                    }
                    policy.on_insert(VirtPage(b), 1);
                } else {
                    // Periodic aging so LRU sees recency.
                    let mut o = SetOracle::new(hot, true);
                    policy.scan_tick(2, &mut o);
                }
            }
            faults
        }

        let mut lru = LruPolicy::new();
        let mut fifo = FifoPolicy::new();
        let lru_faults = run(&mut lru, &reference, capacity, &hot);
        let fifo_faults = run(&mut fifo, &reference, capacity, &hot);
        assert!(
            lru_faults < fifo_faults,
            "LRU ({lru_faults}) must take fewer faults than FIFO ({fifo_faults})"
        );
    }
}
