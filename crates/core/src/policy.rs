//! The replacement-policy interface between the kernel and the policies.
//!
//! The kernel notifies the policy of residency events (insert, map-count
//! change, eviction) and asks it for victims. Any policy that wants
//! recency information must obtain it through the [`AccessBitOracle`],
//! which the kernel implements by actually scanning PTEs and paying for
//! the consequent remote TLB invalidations — so the cost asymmetry the
//! paper measures (CMCP: zero statistics shootdowns; LRU/CLOCK/LFU: many)
//! is enforced by construction.

use cmcp_arch::VirtPage;

/// Kernel-provided access to hardware accessed bits.
///
/// Each [`AccessBitOracle::test_and_clear`] call is a *real* OS operation
/// in the simulation: the kernel walks the mapping cores' PTEs, charges
/// scan cycles, and — whenever a set bit is cleared — issues the remote
/// TLB invalidations x86 requires (paper §3).
pub trait AccessBitOracle {
    /// Read-and-clear the accessed bit(s) of `block`. Returns whether any
    /// mapping core had accessed the block since the last clear.
    fn test_and_clear(&mut self, block: VirtPage) -> bool;
}

/// An oracle that reports "not accessed" and costs nothing — used in
/// unit tests and by policies that never consult accessed bits.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullOracle;

impl AccessBitOracle for NullOracle {
    fn test_and_clear(&mut self, _block: VirtPage) -> bool {
        false
    }
}

/// A residency event deferred into a per-core batch buffer.
///
/// The parallel engine's fault path records these instead of calling the
/// policy directly, so a single policy-lock acquisition can apply many
/// events at once ([`ReplacementPolicy::record_batch`]). Events carry the
/// map count observed when they were generated; by flush time the block
/// may already have been evicted by another core, so batch application
/// must tolerate events for blocks the policy no longer tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEvent {
    /// A block became resident (`on_insert`).
    Insert {
        /// Head virtual page of the block.
        block: VirtPage,
        /// Mapping-core count at insertion.
        map_count: usize,
    },
    /// An already-resident block gained a mapping core
    /// (`on_map_count_change`).
    MapCount {
        /// Head virtual page of the block.
        block: VirtPage,
        /// New mapping-core count.
        map_count: usize,
    },
}

/// A page replacement policy over resident blocks.
///
/// A *block* is one mapping unit (4 kB, 64 kB or 2 MB, fixed per
/// experiment), identified by its head virtual page. The kernel
/// guarantees: `on_insert` exactly once per block before any other event
/// for it; `on_evict` exactly once after `select_victim` returns it (or
/// when the kernel force-evicts); no events for non-resident blocks.
/// The batched path ([`ReplacementPolicy::record_batch`]) relaxes only
/// one of these: a `MapCount` event may arrive after the block was
/// evicted, and must then be dropped.
pub trait ReplacementPolicy: Send {
    /// Short label for reports ("FIFO", "LRU", "CMCP", ...).
    fn name(&self) -> &'static str;

    /// A block became resident. `map_count` is the number of cores
    /// mapping it at insertion (1 under demand paging).
    fn on_insert(&mut self, block: VirtPage, map_count: usize);

    /// Another core set up a PTE for an already-resident block; PSPT
    /// reports the new mapping-core count. (Regular tables never call
    /// this: the information does not exist there — paper §3.)
    fn on_map_count_change(&mut self, block: VirtPage, map_count: usize);

    /// Picks the next victim. The kernel will evict it and then call
    /// [`ReplacementPolicy::on_evict`]. Returns `None` when no block is
    /// resident.
    fn select_victim(&mut self, oracle: &mut dyn AccessBitOracle) -> Option<VirtPage>;

    /// A block stopped being resident.
    fn on_evict(&mut self, block: VirtPage);

    /// Applies a batch of deferred residency events in order.
    ///
    /// Semantically equivalent to calling [`ReplacementPolicy::on_insert`]
    /// / [`ReplacementPolicy::on_map_count_change`] per event, except that
    /// `MapCount` events for blocks the policy no longer tracks are
    /// silently dropped: between a core buffering the event and the batch
    /// flushing, another core may have evicted the block. Policies that
    /// ignore map counts entirely may skip those events without the
    /// `contains` probe.
    fn record_batch(&mut self, events: &[PolicyEvent]) {
        for &ev in events {
            match ev {
                PolicyEvent::Insert { block, map_count } => self.on_insert(block, map_count),
                PolicyEvent::MapCount { block, map_count } => {
                    if self.contains(block) {
                        self.on_map_count_change(block, map_count);
                    }
                }
            }
        }
    }

    /// Whether the kernel should run this policy's periodic statistics
    /// scan (the paper's 10 ms timer on dedicated hyperthreads).
    fn wants_periodic_scan(&self) -> bool {
        false
    }

    /// One periodic scan tick: examine up to `budget` blocks through the
    /// oracle and update internal recency state.
    fn scan_tick(&mut self, _budget: usize, _oracle: &mut dyn AccessBitOracle) {}

    /// Which internal queue currently holds `block`, for trace
    /// attribution: 0 = untracked, 1 = FIFO/default list, 2 = CMCP
    /// priority list. Policies without distinct queues report 1 for
    /// every tracked block.
    fn victim_group(&self, block: VirtPage) -> u8 {
        if self.contains(block) {
            1
        } else {
            0
        }
    }

    /// Number of blocks the policy currently tracks.
    fn resident(&self) -> usize;

    /// Whether `block` is currently tracked (testing / invariant aid).
    fn contains(&self, block: VirtPage) -> bool;
}

/// Selector for constructing policies from experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// First-in first-out.
    Fifo,
    /// Two-list LRU approximation with periodic accessed-bit scanning.
    Lru,
    /// CLOCK / second chance.
    Clock,
    /// Least frequently used via accessed-bit sampling.
    Lfu,
    /// Uniform random eviction (seeded).
    Random,
    /// Core-map count based priority with fixed ratio `p`.
    Cmcp {
        /// Ratio of prioritized pages, `0.0 ..= 1.0` (paper §3).
        p: f64,
    },
    /// CMCP with every knob exposed (ratio + aging), for ablations.
    CmcpTuned(crate::cmcp::CmcpConfig),
    /// CMCP with `p` adapted from fault-frequency feedback (paper §5.6).
    AdaptiveCmcp,
}

impl PolicyKind {
    /// Instantiates the policy for a memory of `capacity_blocks` resident
    /// blocks.
    pub fn build(self, capacity_blocks: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(crate::fifo::FifoPolicy::new()),
            PolicyKind::Lru => Box::new(crate::lru::LruPolicy::new()),
            PolicyKind::Clock => Box::new(crate::clock::ClockPolicy::new()),
            PolicyKind::Lfu => Box::new(crate::lfu::LfuPolicy::new()),
            PolicyKind::Random => Box::new(crate::random::RandomPolicy::new(0xC3C9)),
            PolicyKind::Cmcp { p } => Box::new(crate::cmcp::CmcpPolicy::new(
                crate::cmcp::CmcpConfig {
                    p,
                    ..Default::default()
                },
                capacity_blocks,
            )),
            PolicyKind::CmcpTuned(cfg) => {
                Box::new(crate::cmcp::CmcpPolicy::new(cfg, capacity_blocks))
            }
            PolicyKind::AdaptiveCmcp => {
                Box::new(crate::adaptive::AdaptiveCmcpPolicy::new(capacity_blocks))
            }
        }
    }

    /// Report label.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Fifo => "FIFO".into(),
            PolicyKind::Lru => "LRU".into(),
            PolicyKind::Clock => "CLOCK".into(),
            PolicyKind::Lfu => "LFU".into(),
            PolicyKind::Random => "RANDOM".into(),
            PolicyKind::Cmcp { p } => format!("CMCP(p={p})"),
            PolicyKind::CmcpTuned(cfg) => {
                format!(
                    "CMCP(p={},aging={}/{})",
                    cfg.p, cfg.aging_period, cfg.aging_batch
                )
            }
            PolicyKind::AdaptiveCmcp => "CMCP(adaptive)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_oracle_reports_unaccessed() {
        let mut o = NullOracle;
        assert!(!o.test_and_clear(VirtPage(1)));
    }

    #[test]
    fn kind_builds_every_policy() {
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Random,
            PolicyKind::Cmcp { p: 0.5 },
            PolicyKind::AdaptiveCmcp,
        ] {
            let p = kind.build(128);
            assert_eq!(p.resident(), 0);
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn record_batch_matches_direct_calls() {
        // For every policy, applying a batch must leave the same tracked
        // set (and the same victim order for the deterministic policies)
        // as the equivalent direct calls.
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Random,
            PolicyKind::Cmcp { p: 0.5 },
            PolicyKind::AdaptiveCmcp,
        ] {
            let mut direct = kind.build(64);
            let mut batched = kind.build(64);
            let events: Vec<PolicyEvent> = (0..16u64)
                .map(|b| PolicyEvent::Insert {
                    block: VirtPage(b),
                    map_count: (b % 4 + 1) as usize,
                })
                .chain((0..16u64).map(|b| PolicyEvent::MapCount {
                    block: VirtPage(b),
                    map_count: (b % 4 + 2) as usize,
                }))
                .collect();
            for &ev in &events {
                match ev {
                    PolicyEvent::Insert { block, map_count } => direct.on_insert(block, map_count),
                    PolicyEvent::MapCount { block, map_count } => {
                        direct.on_map_count_change(block, map_count)
                    }
                }
            }
            batched.record_batch(&events);
            assert_eq!(batched.resident(), direct.resident(), "{}", kind.label());
            for b in 0..16u64 {
                assert_eq!(
                    batched.contains(VirtPage(b)),
                    direct.contains(VirtPage(b)),
                    "{}: block {b}",
                    kind.label()
                );
            }
            let vd = direct.select_victim(&mut NullOracle);
            let vb = batched.select_victim(&mut NullOracle);
            if !matches!(kind, PolicyKind::Random) {
                assert_eq!(vb, vd, "{}", kind.label());
            }
        }
    }

    #[test]
    fn record_batch_drops_stale_map_counts() {
        // A MapCount for a block evicted before the flush must not be
        // applied (and must not trip the untracked-block assertions).
        for kind in [
            PolicyKind::Fifo,
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Lfu,
            PolicyKind::Random,
            PolicyKind::Cmcp { p: 0.5 },
            PolicyKind::AdaptiveCmcp,
        ] {
            let mut p = kind.build(64);
            p.on_insert(VirtPage(1), 1);
            p.record_batch(&[
                PolicyEvent::MapCount {
                    block: VirtPage(7),
                    map_count: 3,
                },
                PolicyEvent::Insert {
                    block: VirtPage(2),
                    map_count: 1,
                },
            ]);
            assert!(!p.contains(VirtPage(7)), "{}", kind.label());
            assert!(p.contains(VirtPage(2)), "{}", kind.label());
            assert_eq!(p.resident(), 2, "{}", kind.label());
        }
    }

    #[test]
    fn only_scanning_policies_want_the_timer() {
        assert!(!PolicyKind::Fifo.build(8).wants_periodic_scan());
        assert!(!PolicyKind::Cmcp { p: 0.5 }.build(8).wants_periodic_scan());
        assert!(!PolicyKind::Random.build(8).wants_periodic_scan());
        assert!(PolicyKind::Lru.build(8).wants_periodic_scan());
        assert!(PolicyKind::Lfu.build(8).wants_periodic_scan());
    }
}
