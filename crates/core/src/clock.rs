//! CLOCK (second chance) replacement.
//!
//! The paper remarks (§3) that CLOCK "also rel\[ies\] on the access bit of
//! the PTEs and thus would suffer from the same issues of extra TLB
//! invalidations" as LRU. This implementation exists to demonstrate that
//! claim in the `ablation_policies` bench: every hand test is an
//! accessed-bit read through the oracle, with the full shootdown cost.

use std::collections::VecDeque;

use cmcp_arch::FxHashMap;

use cmcp_arch::VirtPage;

use crate::policy::{AccessBitOracle, PolicyEvent, ReplacementPolicy};

/// The CLOCK algorithm over resident blocks.
///
/// The circular buffer is a `VecDeque` whose front is the clock hand;
/// giving a block a second chance rotates it to the back.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    ring: VecDeque<(u64, u64)>,
    live: FxHashMap<u64, u64>,
    next_gen: u64,
    /// Hand advances (accessed-bit tests) performed, for ablations.
    pub hand_tests: u64,
}

impl ClockPolicy {
    /// An empty CLOCK.
    pub fn new() -> ClockPolicy {
        ClockPolicy::default()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "CLOCK"
    }

    fn on_insert(&mut self, block: VirtPage, _map_count: usize) {
        debug_assert!(!self.contains(block), "double insert of {block}");
        self.next_gen += 1;
        self.live.insert(block.0, self.next_gen);
        // New blocks go just behind the hand.
        self.ring.push_back((block.0, self.next_gen));
    }

    fn on_map_count_change(&mut self, _block: VirtPage, _map_count: usize) {}

    fn select_victim(&mut self, oracle: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        // At most two full revolutions: after one revolution every bit
        // has been cleared, so the second finds a victim.
        let mut budget = 2 * self.ring.len() + 1;
        while budget > 0 {
            let (block, gen) = self.ring.pop_front()?;
            if self.live.get(&block) != Some(&gen) {
                continue; // stale
            }
            budget -= 1;
            self.hand_tests += 1;
            if oracle.test_and_clear(VirtPage(block)) {
                // Second chance: rotate behind the hand.
                self.ring.push_back((block, gen));
            } else {
                // Victim: leave it at the hand for the kernel's on_evict.
                self.ring.push_front((block, gen));
                return Some(VirtPage(block));
            }
        }
        // Pathological oracle that always reports accessed: evict the
        // block at the hand anyway.
        let &(block, _) = self.ring.front()?;
        Some(VirtPage(block))
    }

    fn on_evict(&mut self, block: VirtPage) {
        let removed = self.live.remove(&block.0);
        debug_assert!(removed.is_some(), "evicting untracked {block}");
    }

    fn record_batch(&mut self, events: &[PolicyEvent]) {
        // CLOCK never looks at map counts, so only inserts matter.
        for &ev in events {
            if let PolicyEvent::Insert { block, map_count } = ev {
                self.on_insert(block, map_count);
            }
        }
    }

    fn resident(&self) -> usize {
        self.live.len()
    }

    fn contains(&self, block: VirtPage) -> bool {
        self.live.contains_key(&block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullOracle;
    use std::collections::HashSet;

    struct SetOracle {
        hot: HashSet<u64>,
        sticky: bool,
    }

    impl AccessBitOracle for SetOracle {
        fn test_and_clear(&mut self, block: VirtPage) -> bool {
            if self.sticky {
                self.hot.contains(&block.0)
            } else {
                self.hot.remove(&block.0)
            }
        }
    }

    fn evict_one(p: &mut ClockPolicy, o: &mut dyn AccessBitOracle) -> Option<VirtPage> {
        let v = p.select_victim(o)?;
        p.on_evict(v);
        Some(v)
    }

    #[test]
    fn unreferenced_blocks_evict_in_order() {
        let mut p = ClockPolicy::new();
        for b in 0..3u64 {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = NullOracle;
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(0)));
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(1)));
    }

    #[test]
    fn referenced_block_survives_one_revolution() {
        let mut p = ClockPolicy::new();
        p.on_insert(VirtPage(1), 1);
        p.on_insert(VirtPage(2), 1);
        let mut o = SetOracle {
            hot: [1].into_iter().collect(),
            sticky: false,
        };
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(2)));
        assert!(p.contains(VirtPage(1)));
        // Bit was cleared by the test: next eviction takes block 1.
        assert_eq!(evict_one(&mut p, &mut o), Some(VirtPage(1)));
    }

    #[test]
    fn all_referenced_still_terminates() {
        let mut p = ClockPolicy::new();
        for b in 0..4u64 {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = SetOracle {
            hot: (0..4).collect(),
            sticky: true,
        };
        assert!(evict_one(&mut p, &mut o).is_some());
        assert_eq!(p.resident(), 3);
    }

    #[test]
    fn hand_tests_are_counted() {
        let mut p = ClockPolicy::new();
        for b in 0..3u64 {
            p.on_insert(VirtPage(b), 1);
        }
        let mut o = NullOracle;
        evict_one(&mut p, &mut o);
        assert_eq!(
            p.hand_tests, 1,
            "cold front block is found on the first test"
        );
    }

    #[test]
    fn empty_ring_returns_none() {
        let mut p = ClockPolicy::new();
        assert_eq!(p.select_victim(&mut NullOracle), None);
    }
}
