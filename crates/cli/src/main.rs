//! `cmcp-cli` — command-line front end for the simulator.
//!
//! ```text
//! cmcp-cli --workload cg.B --cores 56 --policy cmcp:0.75 --memory 0.37
//! cmcp-cli --workload scale.sml --policy lru --scheme regular --page-size 64k --json
//! cmcp-cli trace --workload cg.B --cores 8 --chrome cg.chrome.json
//! cmcp-cli --list
//! ```

use std::process::ExitCode;

use cmcp::{
    CostModel, FaultPlan, NumaConfig, PageSize, PolicyKind, SchemeChoice, SimulationBuilder,
    TierConfig, Workload, WorkloadClass,
};

const USAGE: &str = "\
cmcp-cli — many-core hierarchical memory management simulator (HPDC'14 CMCP)

USAGE:
    cmcp-cli [OPTIONS]
    cmcp-cli trace [OPTIONS]     traced run: records the virtual-time
                                 fault-path event stream, validates the
                                 cycle decomposition against the kernel
                                 counters, and writes the events out

TRACE OPTIONS:
    --out <PATH>         JSONL event stream (default: trace.jsonl)
    --chrome <PATH>      also write a chrome://tracing / Perfetto file
    --capacity <N>       per-core event-ring capacity (default: 65536);
                         overflow drops oldest events and disables
                         validation

OPTIONS:
    --workload <NAME>    cg.B cg.C lu.B lu.C bt.B bt.C scale.sml scale.big
                         (default: cg.B)
    --cores <N>          application cores, 1..=256 (default: 16)
    --policy <P>         fifo | lru | clock | lfu | random | adaptive |
                         cmcp[:RATIO]        (default: cmcp:0.75)
    --scheme <S>         pspt | regular      (default: pspt)
    --page-size <SZ>     4k | 64k | 2m | adaptive  (default: 4k);
                         `adaptive` maps fresh 2 MB regions at the
                         granularity current memory pressure suggests
                         and splits oversized eviction victims in place
    --memory <RATIO>     device RAM as a fraction of the declared
                         footprint (default: the workload's paper
                         constraint)
    --tiers <SPEC>       backing-store hierarchy, fastest tier first:
                         name:capacity@latency/bandwidth pairs joined
                         by `;` (capacity in 4 kB pages, 0 = unbounded
                         last tier; latency in cycles; bandwidth in
                         bytes/kcycle), or a preset: flat | 2tier |
                         4tier        (default: flat)
    --numa <SPEC>        NUMA topology: name:capacity@latency/bandwidth
                         nodes joined by `;` (capacity in 4 kB pages —
                         node DRAM budgets, scaled to the device size;
                         latency in cycles per link crossing; bandwidth
                         in bytes/kcycle for migrations), or a preset:
                         1node | 2node | 4node    (default: 1node, the
                         single zero-cost node — byte-identical to the
                         pre-NUMA simulator). Multi-node runs replicate
                         page tables per node and report the
                         replica-coherence traffic
    --numa-no-replication
                         disable page-table replication: every minor
                         fault from a non-home node walks the home
                         node's master table remotely instead
    --threads <N|auto>   host worker threads, >= 1 (default: 1), or
                         `auto` to use every available host CPU; the
                         report is byte-identical at every count — more
                         threads only change wall-clock time
    --counters <PATH>    write the scaling counters as JSON: the
                         deterministic phase-B decomposition (epochs,
                         shardable vs reconciled entries, fast-forwards)
                         plus host-side barrier-wait and parallel-round
                         counters
    --rebuild <MS>       periodic PSPT rebuild every MS virtual ms
    --fault-plan <SPEC>  seeded fault injection on the PCIe/backing path,
                         e.g. \"seed=42,dma=0.01,enospc=0.005\"; rules:
                         dma=R (transfer errors), spike=R[xM] (latency
                         spikes, xM multiplier), ikc=R (message drops),
                         enospc=R (backing-store write failures),
                         offload-death=N (engine dies after N calls)
    --json               emit the full report as JSON
    --list               list workloads and exit
    --help               this text
";

struct Args {
    workload: Workload,
    cores: usize,
    policy: PolicyKind,
    scheme: SchemeChoice,
    page_size: PageSize,
    adaptive: bool,
    tiers: TierConfig,
    numa: NumaConfig,
    numa_replication: bool,
    memory: Option<f64>,
    threads: usize,
    rebuild_ms: u64,
    fault_plan: Option<FaultPlan>,
    counters_out: Option<String>,
    json: bool,
    trace: bool,
    trace_out: String,
    chrome_out: Option<String>,
    trace_capacity: Option<usize>,
}

fn parse_workload(s: &str) -> Result<Workload, String> {
    match s.to_ascii_lowercase().as_str() {
        "cg.b" => Ok(Workload::Cg(WorkloadClass::B)),
        "cg.c" => Ok(Workload::Cg(WorkloadClass::C)),
        "lu.b" => Ok(Workload::Lu(WorkloadClass::B)),
        "lu.c" => Ok(Workload::Lu(WorkloadClass::C)),
        "bt.b" => Ok(Workload::Bt(WorkloadClass::B)),
        "bt.c" => Ok(Workload::Bt(WorkloadClass::C)),
        "scale.sml" | "scale.b" => Ok(Workload::Scale(WorkloadClass::B)),
        "scale.big" | "scale.c" => Ok(Workload::Scale(WorkloadClass::C)),
        _ => Err(format!("unknown workload '{s}' (try --list)")),
    }
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    let lower = s.to_ascii_lowercase();
    if let Some(ratio) = lower.strip_prefix("cmcp:") {
        let p: f64 = ratio
            .parse()
            .map_err(|_| format!("bad CMCP ratio '{ratio}'"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("CMCP ratio {p} outside [0, 1]"));
        }
        return Ok(PolicyKind::Cmcp { p });
    }
    match lower.as_str() {
        "fifo" => Ok(PolicyKind::Fifo),
        "lru" => Ok(PolicyKind::Lru),
        "clock" => Ok(PolicyKind::Clock),
        "lfu" => Ok(PolicyKind::Lfu),
        "random" => Ok(PolicyKind::Random),
        "adaptive" => Ok(PolicyKind::AdaptiveCmcp),
        "cmcp" => Ok(PolicyKind::Cmcp { p: 0.75 }),
        _ => Err(format!("unknown policy '{s}'")),
    }
}

fn parse_page_size(s: &str) -> Result<PageSize, String> {
    match s.to_ascii_lowercase().as_str() {
        "4k" | "4kb" => Ok(PageSize::K4),
        "64k" | "64kb" => Ok(PageSize::K64),
        "2m" | "2mb" => Ok(PageSize::M2),
        _ => Err(format!(
            "unknown page size '{s}' (4k | 64k | 2m | adaptive)"
        )),
    }
}

/// Returns the internal thread-count sentinel: `0` means auto-detect.
/// A literal `0` is still rejected loudly — "use every CPU" is spelled
/// `auto`, not `0`.
fn parse_threads(s: &str) -> Result<usize, String> {
    if s.eq_ignore_ascii_case("auto") {
        return Ok(0);
    }
    let n: usize = s.parse().map_err(|_| format!("bad thread count '{s}'"))?;
    if n == 0 {
        return Err(
            "--threads 0 is rejected: the unified engine needs at least one worker \
             (results are byte-identical at every count, so 1 is always safe; \
             use --threads auto for one worker per host CPU)"
                .into(),
        );
    }
    Ok(n)
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        workload: Workload::Cg(WorkloadClass::B),
        cores: 16,
        policy: PolicyKind::Cmcp { p: 0.75 },
        scheme: SchemeChoice::Pspt,
        page_size: PageSize::K4,
        adaptive: false,
        tiers: TierConfig::flat(),
        numa: NumaConfig::single(),
        numa_replication: true,
        memory: None,
        threads: 1,
        rebuild_ms: 0,
        fault_plan: None,
        counters_out: None,
        json: false,
        trace: false,
        trace_out: "trace.jsonl".to_string(),
        chrome_out: None,
        trace_capacity: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("trace") {
        args.trace = true;
        it.next();
    }
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                for class in [WorkloadClass::B, WorkloadClass::C] {
                    for w in Workload::all(class) {
                        let t = w.trace(2);
                        println!(
                            "{:12} footprint {:>7} pages, declared {:>7} pages, paper constraint {:.0}%",
                            w.label(),
                            t.footprint_pages(),
                            t.declared_blocks(PageSize::K4),
                            w.paper_constraint() * 100.0
                        );
                    }
                }
                return Ok(None);
            }
            "--workload" => args.workload = parse_workload(&value("--workload")?)?,
            "--cores" => {
                args.cores = value("--cores")?
                    .parse()
                    .map_err(|_| "bad core count".to_string())?;
                if args.cores == 0 || args.cores > 256 {
                    return Err("cores must be 1..=256".into());
                }
            }
            "--policy" => args.policy = parse_policy(&value("--policy")?)?,
            "--scheme" => {
                args.scheme = match value("--scheme")?.to_ascii_lowercase().as_str() {
                    "pspt" => SchemeChoice::Pspt,
                    "regular" => SchemeChoice::Regular,
                    other => return Err(format!("unknown scheme '{other}'")),
                }
            }
            "--page-size" => {
                let v = value("--page-size")?;
                if v.eq_ignore_ascii_case("adaptive") {
                    args.adaptive = true;
                    args.page_size = PageSize::M2;
                } else {
                    args.adaptive = false;
                    args.page_size = parse_page_size(&v)?;
                }
            }
            "--tiers" => args.tiers = TierConfig::parse(&value("--tiers")?)?,
            "--numa" => args.numa = NumaConfig::parse(&value("--numa")?)?,
            "--numa-no-replication" => args.numa_replication = false,
            "--memory" => {
                let m: f64 = value("--memory")?
                    .parse()
                    .map_err(|_| "bad memory ratio".to_string())?;
                if m <= 0.0 {
                    return Err("memory ratio must be positive".into());
                }
                args.memory = Some(m);
            }
            "--threads" => args.threads = parse_threads(&value("--threads")?)?,
            "--parallel" => {
                return Err(
                    "--parallel was replaced by --threads N: the engines are unified and \
                     every thread count gives the byte-identical report"
                        .into(),
                )
            }
            "--rebuild" => {
                args.rebuild_ms = value("--rebuild")?
                    .parse()
                    .map_err(|_| "bad rebuild period".to_string())?;
            }
            "--fault-plan" => {
                args.fault_plan = Some(FaultPlan::parse(&value("--fault-plan")?)?);
            }
            "--counters" => args.counters_out = Some(value("--counters")?),
            "--json" => args.json = true,
            "--out" if args.trace => args.trace_out = value("--out")?,
            "--chrome" if args.trace => args.chrome_out = Some(value("--chrome")?),
            "--capacity" if args.trace => {
                let n: usize = value("--capacity")?
                    .parse()
                    .map_err(|_| "bad ring capacity".to_string())?;
                if n == 0 {
                    return Err("ring capacity must be positive".into());
                }
                args.trace_capacity = Some(n);
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }
    // Config-time validation, so a bad combination dies with a clean
    // CLI error instead of a kernel panic: the topology's fastest link
    // must not undercut the engine's IPI-derived epoch window, and
    // adaptive page sizes are not supported on multi-node topologies.
    let cost = CostModel::default();
    args.numa.check_window(cost.ipi_send + cost.ipi_handle)?;
    if args.adaptive && !args.numa.is_single() {
        return Err(
            "--page-size adaptive is not supported with a multi-node --numa topology".into(),
        );
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let memory = args
        .memory
        .unwrap_or_else(|| args.workload.paper_constraint());
    let mut builder = SimulationBuilder::workload(args.workload)
        .cores(args.cores)
        .scheme(args.scheme)
        .policy(args.policy)
        .page_size(args.page_size)
        .tiers(args.tiers)
        .numa(args.numa)
        .numa_replication(args.numa_replication)
        .memory_ratio(memory)
        .threads(args.threads)
        .pspt_rebuild_period(args.rebuild_ms * 1_053_000);
    if args.adaptive {
        builder = builder.adaptive_page_size();
    }
    let faulted = args.fault_plan.is_some();
    if let Some(plan) = args.fault_plan {
        builder = builder.fault_plan(plan);
    }

    let resolved_threads = cmcp::sim::resolve_threads(args.threads);
    let mut host_stats = None;
    let report = if args.trace {
        let builder = match args.trace_capacity {
            Some(n) => builder.trace_capacity(n),
            None => builder,
        };
        let traced = builder.run_traced();
        if let Err(e) = std::fs::write(&args.trace_out, cmcp::trace::to_jsonl(&traced.events)) {
            eprintln!("error: cannot write {}: {e}", args.trace_out);
            return ExitCode::FAILURE;
        }
        if let Some(path) = &args.chrome_out {
            if let Err(e) = std::fs::write(path, cmcp::trace::to_chrome_trace(&traced.events)) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if !args.json {
            println!(
                "trace: {} events -> {}{}",
                traced.events.len(),
                args.trace_out,
                match &args.chrome_out {
                    Some(p) => format!(" (+ chrome trace {p})"),
                    None => String::new(),
                }
            );
            if traced.dropped > 0 {
                println!(
                    "  WARNING: {} events dropped (ring wrapped); raise --capacity",
                    traced.dropped
                );
            }
        }
        traced.report
    } else {
        let (report, host) = builder.run_with_host_stats();
        host_stats = Some(host);
        report
    };

    if let Some(path) = &args.counters_out {
        let s = &report.scaling;
        let scaling = serde_json::json!({
            "epochs": s.epochs,
            "fast_forwards": s.fast_forwards,
            "committed": s.committed,
            "shardable": s.shardable,
            "reconciled": s.reconciled,
            "releases": s.releases,
        });
        let mut counters = serde_json::json!({
            "threads": resolved_threads,
            "scaling": scaling,
        });
        // Host-side counters exist for plain runs only (traced runs go
        // through the event-recording dispatch, which has no host-stats
        // channel); they are machine-dependent by design.
        if let Some(h) = &host_stats {
            if let serde_json::Value::Object(entries) = &mut counters {
                entries.push((
                    "host".to_string(),
                    serde_json::json!({
                        "parallel_rounds": h.parallel_rounds,
                        "barrier_spins": h.barrier_spins,
                        "barrier_yields": h.barrier_yields,
                        "barrier_sleeps": h.barrier_sleeps,
                    }),
                ));
            }
        }
        let body = serde_json::to_string_pretty(&counters).expect("serializable counters");
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.json {
        let mut value = serde_json::json!({
            "workload": report.label,
            "config": report.config,
            "runtime_cycles": report.runtime_cycles,
            "runtime_ms": report.runtime_secs * 1e3,
            "per_core": report.per_core,
            "global": report.global,
            "dma_bytes_in": report.dma_bytes.0,
            "dma_bytes_out": report.dma_bytes.1,
            "sharing_histogram": report.sharing_histogram,
            "breakdown": report.breakdown,
        });
        // Appended only for tiered hierarchies so flat-run JSON (and the
        // committed goldens) keeps its exact pre-tier shape.
        if let Some(t) = &report.tiers {
            let rows: Vec<serde_json::Value> = t
                .names
                .iter()
                .zip(t.counters.iter())
                .map(|(name, c)| {
                    serde_json::json!({
                        "name": name,
                        "used_pages": c.used_pages,
                        "spans": c.spans,
                        "stores": c.stores,
                        "loads": c.loads,
                        "demoted_in": c.demoted_in,
                        "promoted_in": c.promoted_in,
                    })
                })
                .collect();
            if let serde_json::Value::Object(entries) = &mut value {
                entries.push(("tiers".to_string(), serde_json::json!(rows)));
            }
        }
        // Appended only for multi-node topologies, for the same reason:
        // single-node JSON (and the committed goldens) keeps its exact
        // pre-NUMA shape.
        if let Some(n) = &report.numa {
            let nodes: Vec<serde_json::Value> = n
                .nodes
                .iter()
                .zip(n.capacity_blocks.iter().zip(n.used_blocks.iter()))
                .map(|(name, (cap, used))| {
                    serde_json::json!({
                        "name": name,
                        "capacity_blocks": cap,
                        "used_blocks": used,
                    })
                })
                .collect();
            if let serde_json::Value::Object(entries) = &mut value {
                entries.push((
                    "numa".to_string(),
                    serde_json::json!({
                        "replicate": n.replicate,
                        "nodes": nodes,
                        "replica_syncs": n.replica_syncs,
                        "replica_invalidations": n.replica_invalidations,
                        "page_migrations": n.page_migrations,
                        "remote_spills": n.remote_spills,
                        "replica_sync_cycles": n.replica_sync_cycles,
                        "migration_cycles": n.migration_cycles,
                    }),
                ));
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&value).expect("serializable report")
        );
    } else {
        println!("{} | {}", report.label, report.config);
        println!("  memory ratio        {memory:.2}");
        println!(
            "  engine threads      {resolved_threads}{}",
            if args.threads == 0 { " (auto)" } else { "" }
        );
        println!(
            "  runtime             {:.3} ms ({} cycles)",
            report.runtime_secs * 1e3,
            report.runtime_cycles
        );
        println!("  page faults/core    {:.0}", report.avg_page_faults());
        println!(
            "  remote TLB inv/core {:.0}",
            report.avg_remote_invalidations()
        );
        println!("  dTLB misses/core    {:.0}", report.avg_dtlb_misses());
        println!(
            "  evictions {} (write-backs {}), refaults {}, scan ticks {}, rebuilds {}",
            report.global.evictions,
            report.global.writebacks,
            report.global.refaults,
            report.global.scan_ticks,
            report.global.rebuilds
        );
        println!(
            "  DMA: {:.1} MB in, {:.1} MB out",
            report.dma_bytes.0 as f64 / 1e6,
            report.dma_bytes.1 as f64 / 1e6
        );
        if let Some(t) = &report.tiers {
            println!(
                "  tiers: {} demotions, {} promotions",
                report.global.tier_demotions, report.global.tier_promotions
            );
            for (name, c) in t.names.iter().zip(t.counters.iter()) {
                println!(
                    "    {:>6}: {:>8} pages resident, {} stores, {} loads, {} demoted in, {} promoted in",
                    name, c.used_pages, c.stores, c.loads, c.demoted_in, c.promoted_in
                );
            }
        }
        if let Some(n) = &report.numa {
            println!(
                "  numa ({} nodes, replication {}): {} replica syncs, {} invalidations, {} migrations, {} remote spills",
                n.nodes.len(),
                if n.replicate { "on" } else { "off" },
                n.replica_syncs,
                n.replica_invalidations,
                n.page_migrations,
                n.remote_spills
            );
            for (name, (cap, used)) in n
                .nodes
                .iter()
                .zip(n.capacity_blocks.iter().zip(n.used_blocks.iter()))
            {
                println!("    {name:>6}: {used:>8} / {cap} blocks resident");
            }
        }
        if report.global.block_splits > 0 {
            println!(
                "  adaptive page sizes: {} block splits",
                report.global.block_splits
            );
        }
        if faulted {
            let g = &report.global;
            println!(
                "  faults injected: dma errors {}, latency spikes {}, ikc drops {}, enospc {}",
                g.dma_errors, g.latency_spikes, g.ikc_drops, g.enospc_events
            );
            println!(
                "  recovery: retries {}, backoff cycles {}, sync write-backs {}, sync syscalls {}, quarantined frames {}",
                report.per_core.iter().map(|c| c.fault_retries).sum::<u64>(),
                report
                    .per_core
                    .iter()
                    .map(|c| c.retry_backoff_cycles)
                    .sum::<u64>(),
                g.sync_writebacks,
                g.sync_syscalls,
                g.quarantined_frames
            );
        }
        if let Some(b) = &report.breakdown {
            println!(
                "  fault-path breakdown ({}):",
                if b.validated {
                    "validated against kernel counters"
                } else {
                    "UNVALIDATED: events dropped"
                }
            );
            println!(
                "  {:>4} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "core", "faults", "fault cyc", "lock", "shootdown", "dma", "scan", "other"
            );
            for c in &b.per_core {
                println!(
                    "  {:>4} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    c.core,
                    c.faults,
                    c.fault_cycles,
                    c.lock_wait_cycles,
                    c.shootdown_cycles,
                    c.dma_wait_cycles,
                    c.policy_scan_cycles,
                    c.other_cycles
                );
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_parse() {
        assert!(matches!(
            parse_workload("cg.B"),
            Ok(Workload::Cg(WorkloadClass::B))
        ));
        assert!(matches!(
            parse_workload("SCALE.BIG"),
            Ok(Workload::Scale(WorkloadClass::C))
        ));
        assert!(matches!(
            parse_workload("scale.sml"),
            Ok(Workload::Scale(WorkloadClass::B))
        ));
        assert!(parse_workload("ft.B").is_err());
    }

    #[test]
    fn policy_names_parse() {
        assert!(matches!(parse_policy("fifo"), Ok(PolicyKind::Fifo)));
        assert!(matches!(parse_policy("CMCP"), Ok(PolicyKind::Cmcp { .. })));
        match parse_policy("cmcp:0.25") {
            Ok(PolicyKind::Cmcp { p }) => assert!((p - 0.25).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_policy("cmcp:1.5").is_err());
        assert!(parse_policy("mru").is_err());
    }

    #[test]
    fn thread_counts_parse_and_zero_is_rejected_loudly() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("8"), Ok(8));
        let err = parse_threads("0").expect_err("zero must be rejected");
        assert!(err.contains("at least one worker"), "{err}");
        assert!(parse_threads("many").is_err());
    }

    #[test]
    fn threads_auto_maps_to_the_detect_sentinel() {
        assert_eq!(parse_threads("auto"), Ok(0));
        assert_eq!(parse_threads("AUTO"), Ok(0));
    }

    #[test]
    fn page_sizes_parse() {
        assert!(matches!(parse_page_size("4k"), Ok(PageSize::K4)));
        assert!(matches!(parse_page_size("64KB"), Ok(PageSize::K64)));
        assert!(matches!(parse_page_size("2m"), Ok(PageSize::M2)));
        assert!(parse_page_size("1g").is_err());
    }
}
